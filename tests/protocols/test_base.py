"""Tests for repro.protocols.base — static maps and their verification."""

import pytest

from repro.errors import SchedulingError
from repro.protocols.base import StaticBroadcastProtocol, StaticMap, verify_static_map


def simple_map():
    return StaticMap(patterns=[[1], [2, 3]], n_segments=3)


def test_segment_at_cycles():
    m = simple_map()
    assert [m.segment_at(1, s) for s in range(4)] == [2, 3, 2, 3]


def test_segments_in_slot():
    assert simple_map().segments_in_slot(1) == [1, 3]


def test_period_of():
    m = simple_map()
    assert m.period_of(1) == 1
    assert m.period_of(2) == 2
    assert m.period_of(3) == 2


def test_period_of_missing_segment():
    with pytest.raises(SchedulingError):
        simple_map().period_of(9)


def test_period_of_uneven_spacing_detected():
    uneven = StaticMap(patterns=[[1, 1, 2, 1]], n_segments=2)
    with pytest.raises(SchedulingError):
        uneven.period_of(1)


def test_render():
    text = simple_map().render(4)
    assert "Stream 1  S1 S1 S1 S1" in text
    assert "Stream 2  S2 S3 S2 S3" in text


def test_verify_accepts_valid_map():
    verify_static_map(simple_map(), exhaustive_arrivals=10)


def test_verify_rejects_late_segment():
    # S2 every 3 slots violates its 2-slot deadline.
    bad = StaticMap(patterns=[[1], [2, 3, 3]], n_segments=3)
    with pytest.raises(SchedulingError):
        verify_static_map(bad)


def test_verify_rejects_missing_segment():
    missing = StaticMap(patterns=[[1], [3, 3]], n_segments=3)
    with pytest.raises(SchedulingError):
        verify_static_map(missing)


def test_exhaustive_check_agrees_with_period_check():
    # A map that passes the period rule also passes the sliding window.
    verify_static_map(simple_map(), exhaustive_arrivals=24)


class TestStaticBroadcastProtocol:
    def test_constant_load(self):
        protocol = StaticBroadcastProtocol(simple_map())
        protocol.handle_request(slot=3)
        assert protocol.slot_load(0) == 2
        assert protocol.slot_load(10_000) == 2
        assert protocol.requests_admitted == 1
        assert protocol.n_segments == 3
        assert protocol.n_streams == 2

    def test_release_is_noop(self):
        protocol = StaticBroadcastProtocol(simple_map())
        protocol.release_before(100)
        assert protocol.slot_load(5) == 2
