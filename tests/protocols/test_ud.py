"""Tests for repro.protocols.ud — the Universal Distribution protocol."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.protocols.ud import UniversalDistributionProtocol
from repro.sim.slotted import SlottedSimulation
from repro.workload.arrivals import DeterministicArrivals, PoissonArrivals


def test_99_segments_use_seven_fb_streams():
    ud = UniversalDistributionProtocol(n_segments=99)
    assert ud.n_streams == 7
    assert ud.n_segments == 99


def test_idle_system_costs_nothing():
    ud = UniversalDistributionProtocol(n_segments=7)
    assert all(ud.slot_load(s) == 0 for s in range(10))


def test_single_request_costs_at_most_one_instance_per_segment():
    ud = UniversalDistributionProtocol(n_segments=7)
    ud.handle_request(slot=0)
    total = sum(ud.slot_load(s) for s in range(1, 10))
    assert total == 7


def test_saturation_reverts_to_fb():
    """"Above 200 requests per hour ... the UD reverts to a conventional FB
    protocol": under one request per slot every channel occurrence runs."""
    ud = UniversalDistributionProtocol(n_segments=15)
    sim = SlottedSimulation(ud, slot_duration=1.0, horizon_slots=300, warmup_slots=50)
    times = DeterministicArrivals(interval=0.5).generate(300.0, np.random.default_rng(0))
    result = sim.run(times)
    assert result.mean_streams == pytest.approx(4.0)  # FB k for 15 segments
    assert result.max_streams == 4


def test_low_rate_far_below_fb(rng):
    ud = UniversalDistributionProtocol(n_segments=63)
    d = 7200.0 / 63
    sim = SlottedSimulation(ud, slot_duration=d, horizon_slots=2000, warmup_slots=200)
    times = PoissonArrivals(2.0).generate(2000 * d, rng)
    result = sim.run(times)
    assert result.mean_streams < 3.0  # FB would pay 6 always


def test_streams_constructor():
    ud = UniversalDistributionProtocol(n_streams=4)
    assert ud.n_segments == 15


def test_constructor_validation():
    with pytest.raises(ConfigurationError):
        UniversalDistributionProtocol()
