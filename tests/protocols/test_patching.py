"""Tests for repro.protocols.patching."""

import pytest

from repro.analysis.theory import optimal_patching_window, patching_cost_rate
from repro.errors import ConfigurationError
from repro.protocols.patching import PatchingProtocol
from repro.sim.continuous import ContinuousSimulation
from repro.workload.arrivals import PoissonArrivals


def test_first_request_gets_complete_stream():
    p = PatchingProtocol(duration=100.0, window=30.0)
    assert p.handle_request(0.0) == [(0.0, 100.0)]


def test_patch_length_is_delta():
    p = PatchingProtocol(duration=100.0, window=30.0)
    p.handle_request(0.0)
    assert p.handle_request(12.0) == [(12.0, 24.0)]


def test_simultaneous_request_is_free():
    p = PatchingProtocol(duration=100.0, window=30.0)
    p.handle_request(0.0)
    assert p.handle_request(0.0) == []


def test_window_restart():
    p = PatchingProtocol(duration=100.0, window=30.0)
    p.handle_request(0.0)
    assert p.handle_request(31.0) == [(31.0, 131.0)]
    assert p.complete_streams == 2


def test_expired_group_restarts():
    p = PatchingProtocol(duration=100.0, window=1e9)
    p.handle_request(0.0)
    assert p.handle_request(120.0) == [(120.0, 220.0)]


def test_optimal_window_from_rate():
    p = PatchingProtocol(duration=7200.0, expected_rate_per_hour=10.0)
    assert p.window == pytest.approx(optimal_patching_window(10.0 / 3600.0, 7200.0))


def test_simulation_matches_theory(rng):
    duration, rate = 7200.0, 30.0
    protocol = PatchingProtocol(duration, expected_rate_per_hour=rate)
    horizon = 500 * 3600.0
    sim = ContinuousSimulation(protocol, horizon, warmup=horizon * 0.04)
    times = PoissonArrivals(rate).generate(horizon, rng)
    result = sim.run(times)
    theory = patching_cost_rate(rate / 3600.0, duration)
    assert result.mean_streams == pytest.approx(theory, rel=0.08)


def test_zero_delay():
    p = PatchingProtocol(duration=10.0, window=1.0)
    assert p.startup_delay(3.0) == 0.0


def test_validation():
    with pytest.raises(ConfigurationError):
        PatchingProtocol(duration=0.0, window=1.0)
    with pytest.raises(ConfigurationError):
        PatchingProtocol(duration=10.0)
    with pytest.raises(ConfigurationError):
        PatchingProtocol(duration=10.0, window=-1.0)
