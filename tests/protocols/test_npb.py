"""Tests for repro.protocols.npb — New Pagoda Broadcasting (paper Figure 2)."""

import pytest

from repro.errors import ConfigurationError
from repro.protocols.base import verify_static_map
from repro.protocols.npb import (
    NewPagodaBroadcasting,
    pagoda_capacity,
    pagoda_map,
    pagoda_streams_for_segments,
)

FIGURE_2 = """\
Stream 1  S1 S1 S1 S1 S1 S1
Stream 2  S2 S4 S2 S5 S2 S4
Stream 3  S3 S6 S8 S3 S7 S9"""


def test_figure_2_reproduced_verbatim():
    """The paper's NPB mapping, bit for bit."""
    assert pagoda_map(3).render(6) == FIGURE_2


def test_nine_segments_in_three_streams():
    """"The NPB protocol can pack nine segments into three streams while
    the FB protocol can only pack seven."."""
    assert pagoda_capacity(3) == 9


def test_capacity_series_beats_fb():
    from repro.protocols.fb import fb_segments_for_streams

    for k in range(3, 7):
        assert pagoda_capacity(k) > fb_segments_for_streams(k)


def test_capacity_series_pinned():
    """Regression pin of the greedy packer's capacities."""
    assert [pagoda_capacity(k) for k in range(1, 7)] == [1, 3, 9, 25, 73, 203]


def test_99_segments_fit_in_six_streams():
    """The Figures 7/8 configuration: 99 segments, six streams."""
    assert pagoda_streams_for_segments(99) == 6


@pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 6])
def test_delivery_guarantee_full_capacity(k):
    verify_static_map(pagoda_map(k), exhaustive_arrivals=20 if k <= 3 else 0)


def test_delivery_guarantee_partial():
    verify_static_map(pagoda_map(6, n_segments=99))


def test_trains_partition_slots():
    # Every slot of every stream is either idle or carries one segment,
    # and each segment appears with an even period <= its index.
    m = pagoda_map(4)
    for segment in range(1, m.n_segments + 1):
        assert m.period_of(segment) <= segment


def test_requesting_beyond_capacity_rejected():
    with pytest.raises(ConfigurationError):
        pagoda_map(3, n_segments=10)


def test_protocol_interface():
    npb = NewPagodaBroadcasting(n_streams=3)
    assert npb.n_segments == 9
    assert npb.slot_load(99) == 3


def test_protocol_by_segment_count():
    npb = NewPagodaBroadcasting(n_segments=99)
    assert npb.n_allocated_streams == 6
    assert npb.slot_load(0) == 6  # allocated bandwidth, idle trains included


def test_constructor_validation():
    with pytest.raises(ConfigurationError):
        NewPagodaBroadcasting()
    with pytest.raises(ConfigurationError):
        pagoda_capacity(0)
    with pytest.raises(ConfigurationError):
        pagoda_streams_for_segments(0)
