"""Tests for repro.protocols.registry."""

import pytest

from repro.errors import ConfigurationError
from repro.protocols.registry import (
    REACTIVE_NAMES,
    SLOTTED_NAMES,
    ProtocolContext,
    available_protocols,
    build_protocol,
    is_slotted,
)
from repro.sim.continuous import ReactiveModel
from repro.sim.slotted import SlottedModel

CONTEXT = ProtocolContext(n_segments=15, duration=7200.0, rate_per_hour=20.0)


def test_every_name_builds():
    for name in available_protocols():
        protocol = build_protocol(name, CONTEXT)
        assert isinstance(protocol, (SlottedModel, ReactiveModel))


def test_classification_is_total_and_disjoint():
    names = set(available_protocols())
    assert SLOTTED_NAMES | REACTIVE_NAMES == names
    assert not SLOTTED_NAMES & REACTIVE_NAMES


def test_classification_matches_types():
    for name in available_protocols():
        protocol = build_protocol(name, CONTEXT)
        if is_slotted(name):
            assert isinstance(protocol, SlottedModel)
        else:
            assert isinstance(protocol, ReactiveModel)


def test_slotted_protocols_honour_segment_count():
    for name in ["dhb", "ud", "dnpb"]:
        assert build_protocol(name, CONTEXT).n_segments == 15
    # Fixed protocols may round the count up to their capacity.
    for name in ["fb", "npb", "sb"]:
        assert build_protocol(name, CONTEXT).n_segments >= 15


def test_unknown_name_rejected():
    with pytest.raises(ConfigurationError):
        build_protocol("nope", CONTEXT)
    with pytest.raises(ConfigurationError):
        is_slotted("nope")


def test_context_validation():
    with pytest.raises(ConfigurationError):
        ProtocolContext(n_segments=0, duration=1.0, rate_per_hour=1.0)
    with pytest.raises(ConfigurationError):
        ProtocolContext(n_segments=1, duration=0.0, rate_per_hour=1.0)
    with pytest.raises(ConfigurationError):
        ProtocolContext(n_segments=1, duration=1.0, rate_per_hour=-1.0)


def test_zero_rate_context_still_builds_reactive():
    context = ProtocolContext(n_segments=9, duration=7200.0, rate_per_hour=0.0)
    for name in REACTIVE_NAMES:
        build_protocol(name, context)
