"""Tests for repro.protocols.dnpb — the dynamic NPB ablation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.protocols.dnpb import DynamicPagodaProtocol
from repro.protocols.ud import UniversalDistributionProtocol
from repro.sim.slotted import SlottedSimulation
from repro.workload.arrivals import DeterministicArrivals, PoissonArrivals


def test_constructors():
    assert DynamicPagodaProtocol(n_streams=3).n_segments == 9
    assert DynamicPagodaProtocol(n_segments=99).n_streams == 6
    with pytest.raises(ConfigurationError):
        DynamicPagodaProtocol()


def test_idle_system_costs_nothing():
    dnpb = DynamicPagodaProtocol(n_streams=3)
    assert all(dnpb.slot_load(s) == 0 for s in range(10))


def _saturated_mean(protocol, slots=400):
    sim = SlottedSimulation(protocol, 1.0, slots, warmup_slots=slots // 4)
    times = DeterministicArrivals(interval=0.5).generate(
        float(slots), np.random.default_rng(0)
    )
    return sim.run(times).mean_streams


def test_saturation_bounded_by_npb_streams():
    """Dynamic NPB's bandwidth "never exceeded those of NPB"."""
    dnpb = DynamicPagodaProtocol(n_segments=99)
    assert _saturated_mean(dnpb) <= 6.0 + 1e-9


def test_beats_ud_at_saturation():
    """Section 3: dynamic NPB "bested the UD protocol at moderate to high
    access rates"."""
    dnpb_mean = _saturated_mean(DynamicPagodaProtocol(n_segments=99))
    ud_mean = _saturated_mean(UniversalDistributionProtocol(n_segments=99))
    assert dnpb_mean < ud_mean


def test_occurrence_level_dnpb_also_wins_at_low_rates(rng):
    """Documented deviation from Section 3 (see the module docstring).

    The paper's dynamic NPB "lagged behind UD" below 40-60 requests/hour.
    Our reconstruction shares at *occurrence* granularity — the same
    granularity UD uses — and with it the low-rate penalty disappears: NPB's
    longer per-segment periods mean a marked occurrence stays shareable for
    longer, so occurrence-level dynamic NPB dominates UD at every rate.
    This pins the (better-than-published) behaviour so any change is
    noticed; EXPERIMENTS.md discusses the discrepancy.
    """
    d = 7200.0 / 99
    slots = 3000

    def mean_for(protocol, seed):
        sim = SlottedSimulation(protocol, d, slots, warmup_slots=300)
        times = PoissonArrivals(10.0).generate(slots * d, np.random.default_rng(seed))
        return sim.run(times).mean_streams

    dnpb_mean = mean_for(DynamicPagodaProtocol(n_segments=99), 1)
    ud_mean = mean_for(UniversalDistributionProtocol(n_segments=99), 1)
    assert dnpb_mean < ud_mean
