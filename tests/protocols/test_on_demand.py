"""Tests for repro.protocols.on_demand — shared UD/dynamic-NPB machinery."""


from repro.protocols.base import StaticMap
from repro.protocols.on_demand import OnDemandMapProtocol


def make_protocol():
    return OnDemandMapProtocol(StaticMap(patterns=[[1], [2, 3]], n_segments=3))


def test_idle_system_transmits_nothing():
    protocol = make_protocol()
    assert all(protocol.slot_load(s) == 0 for s in range(20))


def test_next_occurrence():
    protocol = make_protocol()
    # S2 occurs at even slots, S3 at odd slots.
    assert protocol.next_occurrence(2, 1) == 2
    assert protocol.next_occurrence(2, 2) == 2
    assert protocol.next_occurrence(2, 3) == 4
    assert protocol.next_occurrence(3, 2) == 3
    assert protocol.next_occurrence(1, 7) == 7


def test_request_marks_first_occurrences():
    protocol = make_protocol()
    protocol.handle_request(slot=0)
    # S1 at slot 1, S2 at slot 2, S3 at slot 1.
    assert protocol.slot_load(1) == 2
    assert protocol.slot_load(2) == 1
    assert protocol.slot_load(3) == 0


def test_marking_is_idempotent_sharing():
    protocol = make_protocol()
    protocol.handle_request(slot=0)
    protocol.handle_request(slot=0)
    assert protocol.slot_load(1) == 2
    assert protocol.slot_load(2) == 1


def test_saturation_reaches_full_map():
    protocol = make_protocol()
    for slot in range(20):
        protocol.handle_request(slot)
    # Past the transient, every occurrence of every stream is marked.
    loads = [protocol.slot_load(s) for s in range(5, 19)]
    assert all(load == 2 for load in loads)


def test_marked_occurrences_meet_deadlines():
    protocol = make_protocol()
    for arrival in range(10):
        protocol.handle_request(arrival)
        for segment in range(1, 4):
            occurrence = protocol.next_occurrence(segment, arrival + 1)
            assert arrival + 1 <= occurrence <= arrival + segment


def test_release_before():
    protocol = make_protocol()
    protocol.handle_request(slot=0)
    protocol.release_before(5)
    assert protocol.slot_load(1) == 0
    protocol.handle_request(slot=6)
    assert protocol.slot_load(7) > 0


def test_properties():
    protocol = make_protocol()
    assert protocol.n_segments == 3
    assert protocol.n_streams == 2
