"""Tests for repro.protocols.intervals."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.protocols.intervals import clip, normalize, subtract, total_length

interval = st.tuples(st.floats(0, 100), st.floats(0, 100)).map(
    lambda p: (min(p), max(p))
)


def test_normalize_merges_and_sorts():
    assert normalize([(3.0, 5.0), (1.0, 2.0), (2.0, 3.5)]) == [(1.0, 5.0)]


def test_normalize_drops_empty():
    assert normalize([(2.0, 2.0), (1.0, 1.0)]) == []


def test_normalize_keeps_disjoint():
    assert normalize([(5.0, 6.0), (1.0, 2.0)]) == [(1.0, 2.0), (5.0, 6.0)]


def test_subtract_middle():
    assert subtract((0.0, 10.0), [(2.0, 4.0)]) == [(0.0, 2.0), (4.0, 10.0)]


def test_subtract_full_cover():
    assert subtract((0.0, 10.0), [(0.0, 10.0)]) == []
    assert subtract((2.0, 8.0), [(0.0, 100.0)]) == []


def test_subtract_no_cover():
    assert subtract((0.0, 10.0), []) == [(0.0, 10.0)]
    assert subtract((0.0, 10.0), [(20.0, 30.0)]) == [(0.0, 10.0)]


def test_subtract_edges():
    assert subtract((0.0, 10.0), [(0.0, 3.0), (7.0, 10.0)]) == [(3.0, 7.0)]


def test_subtract_empty_base():
    assert subtract((5.0, 5.0), [(0.0, 10.0)]) == []


def test_total_length_merges_overlap():
    assert total_length([(0.0, 1.0), (0.5, 2.0)]) == pytest.approx(2.0)


def test_clip():
    assert clip((1.0, 9.0), 2.0, 5.0) == (2.0, 5.0)
    start, end = clip((6.0, 9.0), 0.0, 5.0)
    assert end <= start  # empty


@given(base=interval, covers=st.lists(interval, max_size=15))
def test_subtract_partition_property(base, covers):
    """gaps + covered parts partition the base exactly."""
    gaps = subtract(base, covers)
    base_length = base[1] - base[0]
    clipped = [clip(c, base[0], base[1]) for c in covers]
    covered = total_length([c for c in clipped if c[1] > c[0]])
    assert total_length(gaps) + covered == pytest.approx(base_length, abs=1e-6)
    for gap_start, gap_end in gaps:
        assert base[0] <= gap_start < gap_end <= base[1]
        for cover_start, cover_end in covers:
            if cover_end <= cover_start:
                continue  # zero-width covers are empty: nothing to intersect
            # Gaps never intersect any non-empty cover.
            assert gap_end <= cover_start or gap_start >= cover_end
