"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in (
        "ConfigurationError",
        "SchedulingError",
        "DeadlineMissedError",
        "SimulationError",
        "WorkloadError",
        "VideoModelError",
        "SmoothingError",
    ):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_deadline_missed_carries_context():
    err = errors.DeadlineMissedError(request_slot=4, segment=3, deadline_slot=7)
    assert err.request_slot == 4
    assert err.segment == 3
    assert err.deadline_slot == 7
    assert "S3" in str(err)
    assert isinstance(err, errors.SchedulingError)


def test_catching_base_class_catches_all():
    with pytest.raises(errors.ReproError):
        raise errors.WorkloadError("boom")
