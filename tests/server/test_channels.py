"""Tests for repro.server.channels — channel pools and Erlang-B blocking."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.server.channels import ChannelPool, UnicastVODServer, erlang_b
from repro.sim.continuous import ContinuousSimulation
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import PoissonArrivals


class TestErlangB:
    def test_known_values(self):
        assert erlang_b(0.0, 5) == 0.0
        assert erlang_b(1.0, 1) == pytest.approx(0.5)
        assert erlang_b(2.0, 2) == pytest.approx(0.4)

    def test_matches_direct_formula(self):
        # B(a, k) = (a^k / k!) / sum_j a^j / j!
        a, k = 3.5, 6
        numerator = a**k / math.factorial(k)
        denominator = sum(a**j / math.factorial(j) for j in range(k + 1))
        assert erlang_b(a, k) == pytest.approx(numerator / denominator)

    @given(load=st.floats(0.0, 50.0), channels=st.integers(1, 40))
    def test_probability_bounds_and_monotonicity(self, load, channels):
        blocking = erlang_b(load, channels)
        assert 0.0 <= blocking < 1.0
        assert erlang_b(load, channels + 1) <= blocking + 1e-12

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            erlang_b(-1.0, 3)
        with pytest.raises(ConfigurationError):
            erlang_b(1.0, 0)


class TestChannelPool:
    def test_allocate_and_release(self):
        pool = ChannelPool(capacity=2)
        assert pool.allocate(0.0, 10.0)
        assert pool.allocate(1.0, 5.0)
        assert not pool.allocate(2.0, 3.0)
        assert pool.busy(2.0) == 2
        assert pool.allocate(6.0, 9.0)  # one freed at t=5
        assert pool.free(6.0) == 0

    def test_counters(self):
        pool = ChannelPool(capacity=1)
        pool.allocate(0.0, 10.0)
        pool.allocate(1.0, 2.0)
        assert pool.allocations == 1
        assert pool.rejections == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChannelPool(capacity=0)
        pool = ChannelPool(capacity=1)
        with pytest.raises(ConfigurationError):
            pool.allocate(5.0, 3.0)


class TestUnicastVODServer:
    def test_blocking_example(self):
        server = UnicastVODServer(n_channels=1, duration=10.0)
        assert server.handle_request(0.0) == [(0.0, 10.0)]
        assert server.handle_request(5.0) == []
        assert server.blocking_ratio == 0.5

    def test_blocking_matches_erlang_b(self):
        """The loss-system simulation reproduces the closed form."""
        duration, rate, channels = 7200.0, 14.0, 30
        server = UnicastVODServer(n_channels=channels, duration=duration)
        horizon = 1500 * 3600.0
        sim = ContinuousSimulation(server, horizon)
        times = PoissonArrivals(rate).generate(
            horizon, RandomStreams(1).get("erlang")
        )
        result = sim.run(times)
        offered = (rate / 3600.0) * duration
        assert server.blocking_ratio == pytest.approx(
            erlang_b(offered, channels), abs=0.01
        )
        # Carried load = offered * (1 - blocking), in channels.
        carried = offered * (1 - erlang_b(offered, channels))
        assert result.mean_streams == pytest.approx(carried, rel=0.03)

    def test_unicast_vastly_worse_than_dhb(self):
        """The paper's premise: individual streams do not scale.  At 100
        requests/hour a lossless unicast server needs ~200 busy channels
        where DHB needs ~5 streams."""
        offered = (100.0 / 3600.0) * 7200.0  # 200 Erlangs
        assert offered == pytest.approx(200.0)
        # 5 streams of unicast would block almost everything:
        assert erlang_b(offered, 5) > 0.95

    def test_expected_blocking_helper(self):
        server = UnicastVODServer(n_channels=10, duration=100.0)
        assert server.expected_blocking(0.05) == pytest.approx(erlang_b(5.0, 10))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UnicastVODServer(n_channels=2, duration=0.0)
