"""Property test: simulated unicast blocking tracks the Erlang-B formula.

:class:`UnicastVODServer` is an M/G/k/k loss system (Poisson arrivals,
deterministic holding time, no queue), so by Erlang-B insensitivity its
blocking probability depends on the holding-time distribution only through
the offered load ``a = λ · D``.  The property: for any offered load and
pool size, a long seeded simulation's blocking ratio lands within sampling
noise of ``erlang_b(a, k)``.

Examples are derandomized (fixed hypothesis seed) and each replays a
deterministic arrival trace keyed by the drawn parameters, so the test is
exactly reproducible; the horizon is sized for ~4000 arrivals per example,
which puts the standard error of the blocking estimate well under the
asserted tolerance.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.server.channels import UnicastVODServer, erlang_b
from repro.sim.continuous import ContinuousSimulation
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import PoissonArrivals

#: Video length: one hour, so offered load (Erlangs) == rate per hour.
DURATION = 3600.0

#: Arrivals per example; keeps the blocking estimate's noise ~< 0.01.
TARGET_ARRIVALS = 4000


@settings(max_examples=12, derandomize=True, deadline=None)
@given(
    offered_load=st.floats(min_value=1.0, max_value=12.0),
    n_channels=st.integers(min_value=1, max_value=16),
)
def test_simulated_blocking_matches_erlang_b(offered_load, n_channels):
    rate_per_hour = offered_load  # with DURATION = 1 hour, a = λ[h⁻¹] · 1h
    horizon = TARGET_ARRIVALS / rate_per_hour * 3600.0
    server = UnicastVODServer(n_channels=n_channels, duration=DURATION)
    times = PoissonArrivals(rate_per_hour).generate(
        horizon,
        RandomStreams(int(offered_load * 1000) + n_channels).get("erlang-prop"),
    )
    ContinuousSimulation(server, horizon).run(times)
    assert server.blocking_ratio == pytest.approx(
        erlang_b(offered_load, n_channels), abs=0.06
    )
