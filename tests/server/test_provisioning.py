"""Tests for repro.server.provisioning."""

import numpy as np
import pytest

from repro.core.dhb import DHBProtocol
from repro.errors import ConfigurationError
from repro.protocols.npb import NewPagodaBroadcasting
from repro.server.provisioning import provision_catalog
from repro.units import TWO_HOURS
from repro.workload.popularity import ZipfCatalog

SLOT = TWO_HOURS / 20


def dhb_factory(title):
    return DHBProtocol(n_segments=20)


@pytest.fixture(scope="module")
def catalog_result():
    catalog = ZipfCatalog(n_videos=6, theta=1.0)
    rates = [catalog.rate_for(rank, 240.0) for rank in range(6)]
    return provision_catalog(
        dhb_factory, rates, SLOT, horizon_slots=800, warmup_slots=100
    )


class TestProvisioningResult:
    def test_quantiles_monotone(self, catalog_result):
        q50 = catalog_result.quantile(0.5)
        q99 = catalog_result.quantile(0.99)
        assert q50 <= q99 <= catalog_result.peak_streams

    def test_capacity_for_overflow(self, catalog_result):
        loose = catalog_result.capacity_for_overflow(0.2)
        tight = catalog_result.capacity_for_overflow(0.001)
        assert loose <= tight <= catalog_result.peak_streams
        # The chosen capacity actually meets the overflow target.
        overflow = np.mean(catalog_result.aggregate > tight)
        assert overflow <= 0.001

    def test_mean_equals_sum_of_title_means(self, catalog_result):
        assert catalog_result.mean_streams == pytest.approx(
            catalog_result.sum_of_title_peaks_bound, rel=1e-9
        )

    def test_multiplexing_gain(self, catalog_result):
        """The 99.9th-percentile capacity sits below the sum of per-title
        peaks — the statistical-multiplexing payoff."""
        per_title_peak_sum = 6 * max(catalog_result.per_title_means) + 6
        assert catalog_result.capacity_for_overflow(0.001) < per_title_peak_sum

    def test_validation(self, catalog_result):
        with pytest.raises(ConfigurationError):
            catalog_result.quantile(0.0)
        with pytest.raises(ConfigurationError):
            catalog_result.capacity_for_overflow(1.5)


def test_fixed_protocol_aggregate_is_constant():
    result = provision_catalog(
        lambda title: NewPagodaBroadcasting(n_segments=20),
        [10.0, 10.0],
        SLOT,
        horizon_slots=200,
        warmup_slots=20,
    )
    allocation = NewPagodaBroadcasting(n_segments=20).n_allocated_streams
    assert np.all(result.aggregate == 2 * allocation)
    assert result.capacity_for_overflow(0.01) == 2 * allocation


def test_dhb_provisioning_beats_fixed_for_skewed_catalogs():
    """With Zipf demand the catalog tail idles, so DHB's 98th-percentile
    capacity undercuts a wall of fixed per-title allocations."""
    catalog = ZipfCatalog(n_videos=8, theta=1.2)
    rates = [catalog.rate_for(rank, 120.0) for rank in range(8)]
    dhb = provision_catalog(
        dhb_factory, rates, SLOT, horizon_slots=600, warmup_slots=100
    )
    fixed_allocation = 8 * NewPagodaBroadcasting(n_segments=20).n_allocated_streams
    assert dhb.capacity_for_overflow(0.02) < fixed_allocation
    assert dhb.mean_streams < 0.8 * fixed_allocation


def test_validation():
    with pytest.raises(ConfigurationError):
        provision_catalog(dhb_factory, [], SLOT, 100)
    with pytest.raises(ConfigurationError):
        provision_catalog(dhb_factory, [-1.0], SLOT, 100)


def test_deterministic():
    a = provision_catalog(dhb_factory, [30.0], SLOT, 300, seed=5)
    b = provision_catalog(dhb_factory, [30.0], SLOT, 300, seed=5)
    assert np.array_equal(a.aggregate, b.aggregate)


# ---------------------------------------------------------------------------
# Process-accepting API (provision_catalog_processes)
# ---------------------------------------------------------------------------


def test_rate_wrapper_is_bit_for_bit_with_process_api():
    """provision_catalog is now a wrapper; the pre-refactor behaviour must
    survive exactly for the same (rates, seed)."""
    from repro.server.provisioning import provision_catalog_processes
    from repro.workload.arrivals import PoissonArrivals

    rates = [30.0, 12.0, 5.0]
    via_wrapper = provision_catalog(dhb_factory, rates, SLOT, 400, seed=7)
    via_floats = provision_catalog_processes(dhb_factory, rates, SLOT, 400, seed=7)
    via_processes = provision_catalog_processes(
        dhb_factory, [PoissonArrivals(rate) for rate in rates], SLOT, 400, seed=7
    )
    assert np.array_equal(via_wrapper.aggregate, via_floats.aggregate)
    assert np.array_equal(via_wrapper.aggregate, via_processes.aggregate)
    assert via_wrapper.per_title_means == via_processes.per_title_means


def test_mixed_catalog_workloads():
    """A flash-crowd premiere riding on Poisson back-catalog titles: any
    ArrivalProcess or WorkloadSpec is a first-class title demand."""
    from repro.server.provisioning import provision_catalog_processes
    from repro.workload.flash import FlashCrowd
    from repro.workload.spec import WorkloadSpec

    result = provision_catalog_processes(
        dhb_factory,
        [40.0, FlashCrowd(600.0, 1.0), WorkloadSpec.diurnal("child", 50.0)],
        SLOT,
        400,
        seed=11,
    )
    assert len(result.per_title_means) == 3
    assert result.peak_streams >= max(result.per_title_means)


def test_swapping_one_title_leaves_other_arrivals_untouched():
    """Per-title streams isolate demand models: changing title 1's model
    must not perturb title 0's seeded arrivals (same aggregate share)."""
    from repro.server.provisioning import provision_catalog_processes
    from repro.workload.flash import FlashCrowd

    poisson_only = provision_catalog_processes(
        dhb_factory, [25.0], SLOT, 400, seed=13
    )
    with_flash = provision_catalog_processes(
        dhb_factory, [25.0, FlashCrowd(200.0, 0.5)], SLOT, 400, seed=13
    )
    assert with_flash.per_title_means[0] == poisson_only.per_title_means[0]


def test_process_api_validation():
    from repro.server.provisioning import provision_catalog_processes
    from repro.workload.arrivals import PoissonArrivals

    with pytest.raises(ConfigurationError):
        provision_catalog_processes(dhb_factory, [True], SLOT, 100)
    with pytest.raises(ConfigurationError):
        provision_catalog_processes(dhb_factory, [object()], SLOT, 100)
    with pytest.raises(ConfigurationError):
        provision_catalog_processes(dhb_factory, [-2.0], SLOT, 100)
    # sanity: the valid forms construct
    provision_catalog_processes(
        dhb_factory, [PoissonArrivals(5.0)], SLOT, 50
    )
