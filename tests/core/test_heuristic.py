"""Tests for repro.core.heuristic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.core.heuristic import (
    always_latest_chooser,
    earliest_min_load_chooser,
    latest_min_load_chooser,
    make_random_chooser,
    make_slack_chooser,
    random_chooser,
)


def loads_fn(loads):
    return lambda slot: loads[slot]


class TestLatestMinLoad:
    def test_picks_minimum(self):
        loads = {1: 3, 2: 1, 3: 2}
        assert latest_min_load_chooser(loads_fn(loads), 1, 3) == 2

    def test_tie_breaks_latest(self):
        loads = {1: 0, 2: 5, 3: 0}
        assert latest_min_load_chooser(loads_fn(loads), 1, 3) == 3

    def test_single_slot_window(self):
        assert latest_min_load_chooser(loads_fn({7: 9}), 7, 7) == 7

    def test_all_equal_picks_last(self):
        loads = {s: 2 for s in range(1, 6)}
        assert latest_min_load_chooser(loads_fn(loads), 1, 5) == 5


class TestEarliestMinLoad:
    def test_tie_breaks_earliest(self):
        loads = {1: 0, 2: 5, 3: 0}
        assert earliest_min_load_chooser(loads_fn(loads), 1, 3) == 1

    def test_still_prefers_lower_load(self):
        loads = {1: 4, 2: 1, 3: 4}
        assert earliest_min_load_chooser(loads_fn(loads), 1, 3) == 2


class TestAlwaysLatest:
    def test_ignores_loads(self):
        loads = {1: 0, 2: 0, 3: 1_000_000}
        assert always_latest_chooser(loads_fn(loads), 1, 3) == 3


class TestRandom:
    def test_within_window(self):
        chooser = make_random_chooser(np.random.default_rng(0))
        picks = {chooser(loads_fn({s: 0 for s in range(4, 9)}), 4, 8) for _ in range(200)}
        assert picks == {4, 5, 6, 7, 8}

    def test_reproducible(self):
        a = make_random_chooser(np.random.default_rng(3))
        b = make_random_chooser(np.random.default_rng(3))
        loads = {s: 0 for s in range(1, 10)}
        assert [a(loads_fn(loads), 1, 9) for _ in range(20)] == [
            b(loads_fn(loads), 1, 9) for _ in range(20)
        ]

    def test_module_level_wrapper(self):
        pick = random_chooser(loads_fn({1: 0, 2: 0}), 1, 2, rng=np.random.default_rng(1))
        assert pick in (1, 2)


class TestSlackChooser:
    def test_slack_zero_matches_paper_rule(self):
        chooser = make_slack_chooser(0)
        loads = {1: 2, 2: 0, 3: 1, 4: 0}
        assert chooser(loads_fn(loads), 1, 4) == latest_min_load_chooser(
            loads_fn(loads), 1, 4
        )

    def test_slack_admits_later_heavier_slots(self):
        chooser = make_slack_chooser(1)
        loads = {1: 0, 2: 1, 3: 1}
        assert chooser(loads_fn(loads), 1, 3) == 3  # within min+1

    def test_large_slack_is_always_latest(self):
        chooser = make_slack_chooser(10**6)
        loads = {1: 0, 2: 0, 3: 999}
        assert chooser(loads_fn(loads), 1, 3) == 3

    def test_invalid_slack(self):
        with pytest.raises(SchedulingError):
            make_slack_chooser(-1)

    def test_slack_trades_peak_for_average(self):
        """The dial the future work asks about: more slack -> more sharing
        delay (no higher average) but taller synchronised peaks."""
        from repro.core.dhb import DHBProtocol

        stats = {}
        for slack in (0, 10**6):
            protocol = DHBProtocol(n_segments=30, chooser=make_slack_chooser(slack))
            for slot in range(600):
                protocol.handle_request(slot)
            window = range(100, 620)
            loads = [protocol.slot_load(s) for s in window]
            stats[slack] = (sum(loads) / len(loads), max(loads))
        mean_0, peak_0 = stats[0]
        mean_inf, peak_inf = stats[10**6]
        assert peak_inf > peak_0
        assert mean_inf <= mean_0 * 1.02


@pytest.mark.parametrize(
    "chooser",
    [
        latest_min_load_chooser,
        earliest_min_load_chooser,
        always_latest_chooser,
        make_slack_chooser(2),
    ],
)
def test_empty_window_rejected(chooser):
    with pytest.raises(SchedulingError):
        chooser(loads_fn({}), 5, 4)


@given(
    loads=st.lists(st.integers(0, 10), min_size=1, max_size=20),
    start=st.integers(0, 5),
)
def test_min_load_choosers_find_a_true_minimum(loads, start):
    table = {start + i: load for i, load in enumerate(loads)}
    end = start + len(loads) - 1
    true_min = min(loads)
    for chooser in (latest_min_load_chooser, earliest_min_load_chooser):
        pick = chooser(loads_fn(table), start, end)
        assert start <= pick <= end
        assert table[pick] == true_min
