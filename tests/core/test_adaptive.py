"""Tests for repro.core.adaptive: the retuning protocol's guarantees.

The load-bearing properties:

1. **Zero loss across retunes** — every admitted client receives every
   segment strictly after its arrival slot and no later than
   ``arrival + j + S_admit`` where ``S_admit`` is the slack in force at
   its admission, for arbitrary traces and ladders (hypothesis).
2. **No double-scheduling** — within one slot a segment is placed at
   most once; the schedule's instance count equals the protocol's
   placement count.
3. **Static equivalence** — with a single zero-slack rung the protocol
   is bit-for-bit DHBProtocol.
4. **Batch/scalar equivalence** — the batched admission path matches
   one-by-one admission exactly (schedule, retunes, counters).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import (
    AdaptiveDHBProtocol,
    SlotRateEstimator,
    default_slack_ladder,
)
from repro.core.dhb import DHBProtocol
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry

request_traces = st.lists(st.integers(0, 120), min_size=1, max_size=120).map(sorted)


@st.composite
def slack_ladders(draw):
    """Valid ladders: threshold 0 first, strictly increasing, slacks >= 0."""
    n_rungs = draw(st.integers(1, 4))
    thresholds = [0.0]
    for _ in range(n_rungs - 1):
        thresholds.append(thresholds[-1] + draw(st.floats(0.5, 4.0)))
    slacks = [draw(st.integers(0, 12)) for _ in range(n_rungs)]
    return tuple(zip(thresholds, slacks))


# ---------------------------------------------------------------------------
# SlotRateEstimator
# ---------------------------------------------------------------------------

def test_estimator_batch_equals_scalar():
    batched, scalar = SlotRateEstimator(0.3), SlotRateEstimator(0.3)
    batched.add(2, 4)
    for _ in range(4):
        scalar.add(2)
    assert batched.estimate_before(5) == scalar.estimate_before(5)


def test_estimator_decays_over_empty_slots():
    estimator = SlotRateEstimator(0.5)
    estimator.add(0, 8)
    near = estimator.estimate_before(1)
    far = estimator.estimate_before(10)
    assert near == pytest.approx(4.0)
    assert 0 < far < near


def test_estimate_before_is_pure():
    estimator = SlotRateEstimator(0.25)
    estimator.add(3, 2)
    first = estimator.estimate_before(7)
    assert estimator.estimate_before(7) == first
    estimator.add(4, 1)  # still legal after the peeks
    assert estimator.estimate_before(7) != first or first == 0.0


def test_estimator_rejects_decreasing_slots():
    estimator = SlotRateEstimator(0.2)
    estimator.add(5)
    with pytest.raises(ConfigurationError):
        estimator.add(4)


def test_estimator_rejects_bad_alpha():
    with pytest.raises(ConfigurationError):
        SlotRateEstimator(0.0)
    with pytest.raises(ConfigurationError):
        SlotRateEstimator(1.5)


# ---------------------------------------------------------------------------
# Construction validation
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "ladder",
    [
        (),
        ((1.0, 0),),                 # first threshold must be 0
        ((0.0, 0), (0.0, 3)),        # thresholds strictly increasing
        ((0.0, 0), (2.0, -1)),       # negative slack
    ],
)
def test_invalid_ladders_rejected(ladder):
    with pytest.raises(ConfigurationError):
        AdaptiveDHBProtocol(10, slack_ladder=ladder)


def test_default_ladder_shape():
    ladder = default_slack_ladder(99)
    assert ladder[0] == (0.0, 0)
    assert [t for t, _ in ladder] == sorted({t for t, _ in ladder})
    assert all(s >= 0 for _, s in ladder)


# ---------------------------------------------------------------------------
# Static equivalence at zero slack
# ---------------------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(trace=request_traces, n_segments=st.integers(1, 20))
def test_zero_slack_is_static_dhb(trace, n_segments):
    adaptive = AdaptiveDHBProtocol(n_segments, slack_ladder=((0.0, 0),))
    static = DHBProtocol(n_segments)
    for slot in trace:
        adaptive.handle_request(slot)
        static.handle_request(slot)
    horizon = trace[-1] + n_segments + 1
    for slot in range(horizon):
        assert adaptive.slot_load(slot) == static.slot_load(slot)
        assert adaptive.slot_instances(slot) == static.slot_instances(slot)
    assert adaptive.retunes == []


# ---------------------------------------------------------------------------
# Zero loss / no double-scheduling across retunes (the tentpole property)
# ---------------------------------------------------------------------------

@settings(max_examples=150, deadline=None)
@given(trace=request_traces, n_segments=st.integers(1, 16), ladder=slack_ladders())
def test_retune_never_drops_or_double_schedules(trace, n_segments, ladder):
    protocol = AdaptiveDHBProtocol(
        n_segments, slack_ladder=ladder, epoch_slots=4, track_clients=True
    )
    for slot in trace:
        protocol.handle_request(slot)
    assert len(protocol.clients) == len(trace) == len(protocol.client_slacks)
    max_ladder_slack = max(s for _, s in ladder)
    for plan, slack in zip(protocol.clients, protocol.client_slacks):
        assert slack <= max_ladder_slack
        for segment in range(1, n_segments + 1):
            slot = plan.assignments[segment]
            # Owed instance honored: strictly future, inside the window
            # that was in force at admission time — regardless of any
            # retune (up or down) that happened afterwards.
            assert plan.arrival_slot < slot <= plan.arrival_slot + segment + slack
            # And actually present in the transmission schedule.
            assert segment in protocol.slot_instances(slot)
    # No double-scheduling: each scheduled instance is transmitted once
    # and the schedule's totals agree with per-slot loads.
    horizon = trace[-1] + n_segments + max_ladder_slack + 2
    total = sum(protocol.slot_load(slot) for slot in range(horizon))
    assert total == protocol.schedule.total_instances
    for slot in range(horizon):
        instances = protocol.slot_instances(slot)
        assert len(instances) == len(set(instances))


@settings(max_examples=75, deadline=None)
@given(trace=request_traces, n_segments=st.integers(1, 16), ladder=slack_ladders())
def test_batch_equals_scalar(trace, n_segments, ladder):
    scalar = AdaptiveDHBProtocol(n_segments, slack_ladder=ladder, epoch_slots=4)
    batched = AdaptiveDHBProtocol(n_segments, slack_ladder=ladder, epoch_slots=4)
    for slot in trace:
        scalar.handle_request(slot)
    slots, counts = np.unique(np.asarray(trace), return_counts=True)
    for slot, count in zip(slots, counts):
        batched.handle_batch(int(slot), int(count))
    horizon = trace[-1] + n_segments + max(s for _, s in ladder) + 2
    for slot in range(horizon):
        assert scalar.slot_load(slot) == batched.slot_load(slot)
    assert scalar.retunes == batched.retunes
    assert scalar.requests_admitted == batched.requests_admitted
    assert scalar.max_slack_used == batched.max_slack_used


# ---------------------------------------------------------------------------
# Retuning behavior and bandwidth payoff
# ---------------------------------------------------------------------------

def test_retunes_fire_only_at_epoch_boundaries():
    protocol = AdaptiveDHBProtocol(
        20, slack_ladder=((0.0, 0), (2.0, 6)), epoch_slots=8, alpha=0.5
    )
    for slot in range(8):  # 3 requests/slot throughout epoch 0
        protocol.handle_batch(slot, 3)
    assert protocol.slack == 0  # epoch 0: no signal yet at first admission
    protocol.handle_request(8)  # first admission of epoch 1 retunes
    assert protocol.slack == 6
    assert len(protocol.retunes) == 1
    event = protocol.retunes[0]
    assert event.slot == 8 and event.old_slack == 0 and event.new_slack == 6
    assert event.estimated_rate >= 2.0


def test_slack_retunes_down_when_demand_fades():
    protocol = AdaptiveDHBProtocol(
        20, slack_ladder=((0.0, 0), (2.0, 6)), epoch_slots=4
    )
    for slot in range(8):
        protocol.handle_batch(slot, 4)
    protocol.handle_request(8)
    assert protocol.slack == 6
    # A long quiet stretch decays the EWMA back below the rung.
    protocol.handle_request(200)
    assert protocol.slack == 0
    assert protocol.max_slack_used == 6
    assert [e.new_slack for e in protocol.retunes] == [6, 0]


def test_saturated_slack_lowers_bandwidth_vs_static():
    """One request per slot saturates DHB at H(n); slack must beat it."""
    adaptive = AdaptiveDHBProtocol(
        40, slack_ladder=((0.0, 0), (0.5, 10)), epoch_slots=4
    )
    static = DHBProtocol(40)
    for slot in range(600):
        adaptive.handle_request(slot)
        static.handle_request(slot)
    window = range(200, 600)  # steady state, past the retune
    adaptive_mean = sum(adaptive.slot_load(s) for s in window) / len(window)
    static_mean = sum(static.slot_load(s) for s in window) / len(window)
    assert adaptive_mean < static_mean


def test_metrics_counters_emitted():
    registry = MetricsRegistry()
    protocol = AdaptiveDHBProtocol(10, slack_ladder=((0.0, 0), (0.5, 4)))
    protocol.bind_metrics(registry)
    for slot in range(40):
        protocol.handle_request(slot)
    snapshot = registry.to_dict()["counters"]
    assert snapshot["protocol.requests"] == 40
    assert snapshot["protocol.instances_scheduled"] == protocol.schedule.total_instances
    assert snapshot["protocol.retunes"] == len(protocol.retunes) >= 1


def test_release_before_keeps_serving():
    protocol = AdaptiveDHBProtocol(8, slack_ladder=((0.0, 0), (1.0, 3)))
    for slot in range(50):
        protocol.handle_request(slot)
    protocol.release_before(40)
    protocol.handle_request(60)  # future lists self-prune; no stale sharing
    assert protocol.slot_load(61) >= 0


def test_repr_mentions_slack_and_retunes():
    protocol = AdaptiveDHBProtocol(10)
    text = repr(protocol)
    assert "AdaptiveDHBProtocol" in text and "slack=0" in text
