"""Tests for repro.core.bandwidth_limited — the receive-cap extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.core.bandwidth_limited import BandwidthLimitedDHB
from repro.core.dhb import DHBProtocol

request_traces = st.lists(st.integers(0, 30), min_size=1, max_size=40).map(sorted)


def test_cap_respected_for_single_request():
    protocol = BandwidthLimitedDHB(n_segments=10, client_cap=2, track_clients=True)
    plan = protocol.handle_request(slot=0)
    assert plan.max_concurrent_receptions() <= 2
    plan.verify(protocol.periods)


def test_cap_one_spreads_one_segment_per_slot():
    protocol = BandwidthLimitedDHB(n_segments=6, client_cap=1, track_clients=True)
    plan = protocol.handle_request(slot=0)
    assert plan.max_concurrent_receptions() == 1
    assert sorted(plan.assignments.values()) == [1, 2, 3, 4, 5, 6]
    plan.verify(protocol.periods)


def test_sharing_still_happens_under_cap():
    protocol = BandwidthLimitedDHB(n_segments=8, client_cap=3, track_clients=True)
    protocol.handle_request(slot=0)
    plan = protocol.handle_request(slot=1)
    assert any(plan.shared.values())


def test_cap_may_force_duplicates():
    """When a shareable instance sits in a cap-saturated slot, the client
    must get its own copy — the single-future-instance invariant of base
    DHB intentionally breaks here."""
    capped = BandwidthLimitedDHB(n_segments=12, client_cap=1, track_clients=True)
    uncapped = DHBProtocol(n_segments=12, track_clients=True)
    for slot in [0, 0, 0, 1, 1, 2, 3]:
        capped.handle_request(slot)
        uncapped.handle_request(slot)
    assert capped.schedule.total_instances >= uncapped.schedule.total_instances


@settings(max_examples=80, deadline=None)
@given(trace=request_traces, n_segments=st.integers(2, 14), cap=st.integers(1, 4))
def test_cap_and_deadlines_hold_together(trace, n_segments, cap):
    protocol = BandwidthLimitedDHB(
        n_segments=n_segments, client_cap=cap, track_clients=True
    )
    for slot in trace:
        protocol.handle_request(slot)
    for plan in protocol.clients:
        plan.verify(protocol.periods)
        assert plan.max_concurrent_receptions() <= cap


@settings(max_examples=40, deadline=None)
@given(trace=request_traces, n_segments=st.integers(2, 12))
def test_large_cap_matches_unlimited_dhb_cost(trace, n_segments):
    """With the cap above the segment count the protocols behave alike."""
    capped = BandwidthLimitedDHB(n_segments=n_segments, client_cap=n_segments + 1)
    unlimited = DHBProtocol(n_segments=n_segments)
    for slot in trace:
        capped.handle_request(slot)
        unlimited.handle_request(slot)
    assert capped.schedule.total_instances == unlimited.schedule.total_instances


def test_tighter_cap_costs_more_bandwidth():
    tight = BandwidthLimitedDHB(n_segments=20, client_cap=1)
    loose = BandwidthLimitedDHB(n_segments=20, client_cap=4)
    for slot in range(0, 40, 2):
        tight.handle_request(slot)
        loose.handle_request(slot)
    assert tight.schedule.total_instances >= loose.schedule.total_instances


def test_release_before_prunes_state():
    protocol = BandwidthLimitedDHB(n_segments=5, client_cap=2)
    protocol.handle_request(slot=0)
    protocol.release_before(10)
    protocol.handle_request(slot=10)  # must not crash on pruned slots
    assert protocol.requests_admitted == 2


def test_invalid_configuration():
    with pytest.raises(ConfigurationError):
        BandwidthLimitedDHB(n_segments=5, client_cap=0)
    with pytest.raises(ConfigurationError):
        BandwidthLimitedDHB()


def test_repr():
    assert "cap=2" in repr(BandwidthLimitedDHB(n_segments=5, client_cap=2))
