"""Tests for repro.core.variants — the Section 4 DHB-a/b/c/d derivations."""

import pytest

from repro.errors import ConfigurationError
from repro.core.variants import dhb_a, dhb_b, dhb_c, dhb_d, make_all_variants
from repro.units import KILOBYTE
from repro.video.matrix import matrix_like_video

MATRIX = matrix_like_video()
WAIT = 60.0


class TestOnMatrixTrace:
    """Anchors against the numbers Section 4 publishes."""

    def test_dhb_a_matches_paper_exactly(self):
        variant = dhb_a(MATRIX, WAIT)
        assert variant.n_segments == 137  # paper: 137 segments
        assert variant.stream_rate / KILOBYTE == pytest.approx(951.0)  # paper: 951
        assert variant.periods.is_uniform

    def test_dhb_b_rate_between_average_and_peak(self):
        variant = dhb_b(MATRIX, WAIT)
        assert variant.n_segments == 137
        # Paper's trace gave 789 KB/s; ours is trace-specific but must sit
        # strictly between the mean (636) and the peak (951).
        assert MATRIX.average_bandwidth < variant.stream_rate < MATRIX.peak_bandwidth()

    def test_dhb_c_packs_fewer_segments_at_lower_rate(self):
        b = dhb_b(MATRIX, WAIT)
        c = dhb_c(MATRIX, WAIT)
        assert c.n_segments < 137  # paper: 129
        assert c.stream_rate < b.stream_rate  # paper: 671 < 789
        assert c.stream_rate >= MATRIX.total_bytes / (MATRIX.duration + WAIT) - 1e-9

    def test_dhb_d_relaxes_frequencies(self):
        c = dhb_c(MATRIX, WAIT)
        d = dhb_d(MATRIX, WAIT)
        assert d.n_segments == c.n_segments
        assert d.stream_rate == pytest.approx(c.stream_rate)
        # The relaxation strictly reduces the saturation bandwidth.
        assert (
            d.periods.saturation_bandwidth < c.periods.saturation_bandwidth
        )
        # T[1] is always 1; many later periods exceed their ordinal.
        assert d.periods[1] == 1
        gains = [d.periods[j] - j for j in range(1, d.n_segments + 1)]
        assert sum(1 for g in gains if g > 0) > d.n_segments // 4

    def test_saturation_ordering_matches_figure_9(self):
        variants = make_all_variants(MATRIX, WAIT)
        saturation = {
            name: v.periods.saturation_bandwidth * v.stream_rate
            for name, v in variants.items()
        }
        assert (
            saturation["DHB-a"]
            > saturation["DHB-b"]
            > saturation["DHB-c"]
            > saturation["DHB-d"]
        )

    def test_deterministic_wait_step_is_largest(self):
        """"Switching to a deterministic waiting time has the most impact."."""
        variants = make_all_variants(MATRIX, WAIT)
        saturation = [
            variants[name].periods.saturation_bandwidth * variants[name].stream_rate
            for name in ("DHB-a", "DHB-b", "DHB-c", "DHB-d")
        ]
        steps = [a - b for a, b in zip(saturation, saturation[1:])]
        assert steps[0] == max(steps)


class TestGenericBehaviour:
    def test_protocols_build_and_run(self, tiny_vbr):
        for variant in make_all_variants(tiny_vbr, 2.0).values():
            protocol = variant.build_protocol(track_clients=True)
            protocol.handle_request(0)
            protocol.clients[0].verify(variant.periods)

    def test_segment_bytes_cover_video(self, tiny_vbr):
        for name, variant in make_all_variants(tiny_vbr, 2.0).items():
            if name == "DHB-a":
                continue  # containers, not content bytes
            assert sum(variant.segment_bytes) == pytest.approx(
                tiny_vbr.total_bytes, rel=1e-6
            )

    def test_saturation_bytes_per_second(self, tiny_vbr):
        variant = dhb_b(tiny_vbr, 2.0)
        expected = sum(
            w / (t * 2.0) for w, t in zip(variant.segment_bytes, variant.periods)
        )
        assert variant.saturation_bytes_per_second == pytest.approx(expected)

    def test_invalid_wait_rejected(self, tiny_vbr):
        with pytest.raises(ConfigurationError):
            dhb_a(tiny_vbr, 0.0)
        with pytest.raises(ConfigurationError):
            dhb_c(tiny_vbr, tiny_vbr.duration)
