"""Tests for repro.core.periods."""

import pytest

from repro.analysis.theory import harmonic_number
from repro.errors import ConfigurationError
from repro.core.periods import PeriodVector


def test_uniform():
    periods = PeriodVector.uniform(5)
    assert list(periods) == [1, 2, 3, 4, 5]
    assert periods.is_uniform
    assert len(periods) == 5


def test_one_based_indexing():
    periods = PeriodVector([1, 3, 3, 8])
    assert periods[1] == 1
    assert periods[4] == 8
    with pytest.raises(ConfigurationError):
        periods[0]
    with pytest.raises(ConfigurationError):
        periods[5]


def test_custom_vector_not_uniform():
    assert not PeriodVector([1, 3, 3]).is_uniform


def test_saturation_bandwidth_uniform_is_harmonic():
    periods = PeriodVector.uniform(99)
    assert periods.saturation_bandwidth == pytest.approx(harmonic_number(99))


def test_saturation_bandwidth_custom():
    periods = PeriodVector([1, 2, 4])
    assert periods.saturation_bandwidth == pytest.approx(1 + 0.5 + 0.25)


def test_equality():
    assert PeriodVector([1, 2]) == PeriodVector([1, 2])
    assert PeriodVector([1, 2]) != PeriodVector([1, 3])
    assert PeriodVector([1, 2]).__eq__(42) is NotImplemented


def test_as_list_copies():
    periods = PeriodVector([1, 2, 3])
    values = periods.as_list()
    values[0] = 99
    assert periods[1] == 1


def test_repr_truncates_long_vectors():
    assert "n=99" in repr(PeriodVector.uniform(99))
    assert "..." not in repr(PeriodVector.uniform(3))


def test_validation():
    with pytest.raises(ConfigurationError):
        PeriodVector([])
    with pytest.raises(ConfigurationError):
        PeriodVector([2, 2])  # T[1] must be 1
    with pytest.raises(ConfigurationError):
        PeriodVector([1, 0])
    with pytest.raises(ConfigurationError):
        PeriodVector([1, 2.5])
    with pytest.raises(ConfigurationError):
        PeriodVector.uniform(0)
