"""Tests for repro.core.buffer — client STB buffer occupancy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buffer import buffer_profile, worst_case_buffer
from repro.core.client import ClientPlan
from repro.core.dhb import DHBProtocol
from repro.errors import ConfigurationError, SchedulingError


def make_plan(arrival, assignments):
    plan = ClientPlan(arrival_slot=arrival)
    for segment, slot in assignments.items():
        plan.assign(segment, slot, shared=False)
    return plan


def test_live_streaming_needs_no_buffer():
    """S_j received exactly in relative slot j streams through."""
    plan = make_plan(0, {1: 1, 2: 2, 3: 3})
    profile = buffer_profile(plan)
    assert profile.peak_bytes == 0.0
    assert all(level == 0.0 for level in profile.occupancy)


def test_early_reception_is_buffered():
    # S3 arrives in relative slot 1, consumed in slot 3: buffered 2 slots.
    plan = make_plan(0, {1: 1, 2: 2, 3: 1})
    profile = buffer_profile(plan)
    assert profile.occupancy == [1.0, 1.0, 0.0]
    assert profile.peak_bytes == 1.0


def test_weighted_sizes():
    plan = make_plan(0, {1: 1, 2: 1, 3: 3})
    profile = buffer_profile(plan, segment_bytes=[10.0, 100.0, 5.0])
    assert profile.peak_bytes == 100.0
    assert profile.total_bytes == 115.0
    assert profile.peak_fraction_of_video == pytest.approx(100.0 / 115.0)


def test_figure5_client_buffers_two_segments():
    protocol = DHBProtocol(n_segments=6, track_clients=True)
    protocol.handle_request(slot=1)
    plan = protocol.handle_request(slot=3)
    assert buffer_profile(plan).peak_bytes == 2.0


def test_occupancy_ends_at_zero():
    protocol = DHBProtocol(n_segments=10, track_clients=True)
    for slot in [0, 2, 5, 6]:
        protocol.handle_request(slot)
    for plan in protocol.clients:
        profile = buffer_profile(plan)
        assert profile.occupancy[-1] == 0.0
        assert min(profile.occupancy) >= 0.0


def test_worst_case_buffer_bounded_by_video_size():
    protocol = DHBProtocol(n_segments=12, track_clients=True)
    for slot in range(0, 30, 2):
        protocol.handle_request(slot)
    peak = worst_case_buffer(protocol.clients)
    assert 0.0 <= peak <= 12.0


@settings(max_examples=80, deadline=None)
@given(
    trace=st.lists(st.integers(0, 25), min_size=1, max_size=40).map(sorted),
    n_segments=st.integers(1, 15),
)
def test_buffer_profile_invariants(trace, n_segments):
    """Occupancy never negative, drains to zero, peak below video size."""
    protocol = DHBProtocol(n_segments=n_segments, track_clients=True)
    for slot in trace:
        protocol.handle_request(slot)
    for plan in protocol.clients:
        profile = buffer_profile(plan)
        assert min(profile.occupancy) >= -1e-9
        assert profile.occupancy[-1] == 0.0
        assert profile.peak_bytes <= n_segments
        assert profile.peak_fraction_of_video <= 1.0


def test_validation():
    with pytest.raises(ConfigurationError):
        buffer_profile(ClientPlan(arrival_slot=0))
    gappy = ClientPlan(arrival_slot=0)
    gappy.assign(1, 1, shared=False)
    gappy.assign(3, 3, shared=False)
    with pytest.raises(SchedulingError):
        buffer_profile(gappy)
    full = make_plan(0, {1: 1, 2: 2})
    with pytest.raises(ConfigurationError):
        buffer_profile(full, segment_bytes=[1.0])
