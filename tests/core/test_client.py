"""Tests for repro.core.client."""

import pytest

from repro.errors import DeadlineMissedError, SchedulingError
from repro.core.client import ClientPlan
from repro.core.periods import PeriodVector


def make_plan(arrival, assignments, shared=None):
    plan = ClientPlan(arrival_slot=arrival)
    for segment, slot in assignments.items():
        plan.assign(segment, slot, shared=(shared or {}).get(segment, False))
    return plan


def test_valid_plan_verifies():
    plan = make_plan(1, {1: 2, 2: 3, 3: 4})
    plan.verify(PeriodVector.uniform(3))


def test_deadline_violation_detected():
    plan = make_plan(0, {1: 1, 2: 2, 3: 5})  # S3 due by slot 3
    with pytest.raises(DeadlineMissedError) as excinfo:
        plan.verify(PeriodVector.uniform(3))
    assert excinfo.value.segment == 3
    assert excinfo.value.deadline_slot == 3


def test_past_assignment_detected():
    plan = make_plan(5, {1: 5, 2: 6, 3: 7})  # S1 in the arrival slot itself
    with pytest.raises(SchedulingError):
        plan.verify(PeriodVector.uniform(3))


def test_missing_segment_detected():
    plan = make_plan(0, {1: 1, 3: 3})
    with pytest.raises(SchedulingError):
        plan.verify(PeriodVector.uniform(3))


def test_custom_periods_change_deadlines():
    plan = make_plan(0, {1: 1, 2: 4})
    plan.verify(PeriodVector([1, 4]))  # S2 may ride out to slot 4
    with pytest.raises(DeadlineMissedError):
        plan.verify(PeriodVector([1, 2]))


def test_double_assignment_rejected():
    plan = ClientPlan(arrival_slot=0)
    plan.assign(1, 1, shared=False)
    with pytest.raises(SchedulingError):
        plan.assign(1, 2, shared=True)


def test_new_instance_count():
    plan = make_plan(0, {1: 1, 2: 2, 3: 3}, shared={2: True})
    assert plan.n_new_instances == 2


def test_max_concurrent_receptions():
    plan = make_plan(0, {1: 1, 2: 2, 3: 2, 4: 2})
    assert plan.max_concurrent_receptions() == 3
    assert ClientPlan(arrival_slot=0).max_concurrent_receptions() == 0
