"""Property-based tests of the DHB scheduler's core guarantees.

These are the invariants of DESIGN.md §5, checked over randomly generated
request traces and period vectors with hypothesis:

1. every admitted client receives every segment on time;
2. the waiting-time bound (scheduling into slots > arrival only);
3. the single-future-instance invariant of window sharing;
4. bandwidth accounting consistency.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dhb import DHBProtocol
from repro.core.heuristic import (
    always_latest_chooser,
    earliest_min_load_chooser,
    latest_min_load_chooser,
)

request_traces = st.lists(st.integers(0, 40), min_size=1, max_size=60).map(sorted)

choosers = st.sampled_from(
    [latest_min_load_chooser, earliest_min_load_chooser, always_latest_chooser]
)


@st.composite
def period_vectors(draw):
    """Valid period vectors: T[1] = 1, each T[j] in [max(1, j-1), j + 6]."""
    n = draw(st.integers(2, 16))
    periods = [1]
    for j in range(2, n + 1):
        periods.append(draw(st.integers(max(1, j - 1), j + 6)))
    return periods


@settings(max_examples=150, deadline=None)
@given(trace=request_traces, n_segments=st.integers(1, 20), chooser=choosers)
def test_every_client_plan_is_on_time(trace, n_segments, chooser):
    protocol = DHBProtocol(n_segments=n_segments, chooser=chooser, track_clients=True)
    for slot in trace:
        protocol.handle_request(slot)
    for plan in protocol.clients:
        plan.verify(protocol.periods)  # raises on any violation


@settings(max_examples=100, deadline=None)
@given(trace=request_traces, periods=period_vectors())
def test_on_time_under_custom_periods(trace, periods):
    protocol = DHBProtocol(periods=periods, track_clients=True)
    for slot in trace:
        protocol.handle_request(slot)
    for plan in protocol.clients:
        plan.verify(protocol.periods)


@settings(max_examples=100, deadline=None)
@given(trace=request_traces, n_segments=st.integers(1, 15))
def test_single_future_instance_invariant(trace, n_segments):
    """After each request, no segment has two instances beyond that slot."""
    protocol = DHBProtocol(n_segments=n_segments)
    horizon = max(trace) + n_segments + 2
    for slot in trace:
        protocol.handle_request(slot)
        future_counts = {j: 0 for j in range(1, n_segments + 1)}
        for future_slot in range(slot + 1, horizon):
            for segment in protocol.schedule.segments_in(future_slot):
                future_counts[segment] += 1
        assert all(count <= 1 for count in future_counts.values())


@settings(max_examples=100, deadline=None)
@given(trace=request_traces, n_segments=st.integers(1, 15))
def test_bandwidth_accounting_consistency(trace, n_segments):
    """Sum of slot loads equals total instances; sharing only reduces it."""
    protocol = DHBProtocol(n_segments=n_segments, track_clients=True)
    for slot in trace:
        protocol.handle_request(slot)
    horizon = max(trace) + n_segments + 2
    summed = sum(protocol.slot_load(s) for s in range(horizon))
    assert summed == protocol.schedule.total_instances
    new_instances = sum(plan.n_new_instances for plan in protocol.clients)
    assert summed == new_instances
    assert summed <= len(trace) * n_segments


@settings(max_examples=60, deadline=None)
@given(trace=request_traces, n_segments=st.integers(2, 15))
def test_sharing_never_worse_than_no_sharing(trace, n_segments):
    shared = DHBProtocol(n_segments=n_segments)
    unshared = DHBProtocol(n_segments=n_segments, enable_sharing=False)
    for slot in trace:
        shared.handle_request(slot)
        unshared.handle_request(slot)
    assert (
        shared.schedule.total_instances <= unshared.schedule.total_instances
    )


@settings(max_examples=60, deadline=None)
@given(trace=request_traces, n_segments=st.integers(1, 12))
def test_no_transmissions_at_or_before_request_slot(trace, n_segments):
    protocol = DHBProtocol(n_segments=n_segments, track_clients=True)
    for slot in trace:
        protocol.handle_request(slot)
    for plan in protocol.clients:
        assert all(s > plan.arrival_slot for s in plan.assignments.values())
