"""Tests for repro.core.dhb — the protocol of the paper's Figure 6."""

import pytest

from repro.errors import ConfigurationError
from repro.core.dhb import DHBProtocol
from repro.core.heuristic import always_latest_chooser
from repro.core.periods import PeriodVector


class TestPaperFigures:
    def test_figure_4_idle_system(self):
        """A request into an idle system during slot 1 schedules S_j at j+1."""
        protocol = DHBProtocol(n_segments=6, track_clients=True)
        protocol.handle_request(slot=1)
        assert protocol.clients[0].assignments == {
            1: 2, 2: 3, 3: 4, 4: 5, 5: 6, 6: 7
        }
        assert all(not shared for shared in protocol.clients[0].shared.values())

    def test_figure_5_second_request_shares(self):
        """A second request during slot 3 adds only S1@4 and S2@5."""
        protocol = DHBProtocol(n_segments=6, track_clients=True)
        protocol.handle_request(slot=1)
        protocol.handle_request(slot=3)
        plan = protocol.clients[1]
        new = {j: s for j, s in plan.assignments.items() if not plan.shared[j]}
        assert new == {1: 4, 2: 5}
        shared = {j: s for j, s in plan.assignments.items() if plan.shared[j]}
        assert shared == {3: 4, 4: 5, 5: 6, 6: 7}

    def test_figure_5_slot_loads(self):
        protocol = DHBProtocol(n_segments=6)
        protocol.handle_request(slot=1)
        protocol.handle_request(slot=3)
        assert [protocol.slot_load(s) for s in range(2, 8)] == [1, 1, 2, 2, 1, 1]


class TestSharing:
    def test_simultaneous_requests_fully_share(self):
        protocol = DHBProtocol(n_segments=10, track_clients=True)
        protocol.handle_request(slot=0)
        protocol.handle_request(slot=0)
        assert protocol.clients[1].n_new_instances == 0

    def test_request_far_later_shares_nothing(self):
        protocol = DHBProtocol(n_segments=5, track_clients=True)
        protocol.handle_request(slot=0)
        protocol.handle_request(slot=100)
        assert protocol.clients[1].n_new_instances == 5

    def test_sharing_disabled_duplicates_everything(self):
        protocol = DHBProtocol(n_segments=5, enable_sharing=False, track_clients=True)
        protocol.handle_request(slot=0)
        protocol.handle_request(slot=0)
        assert protocol.clients[1].n_new_instances == 5

    def test_minimum_frequency_property(self):
        """Never more than one instance of S_j within any j-slot window.

        The paper: "the protocol will never schedule more than one instance
        of segment S_i once every i slots".
        """
        protocol = DHBProtocol(n_segments=8)
        for slot in range(0, 60):
            protocol.handle_request(slot)
        # Collect per-segment transmission slots from the raw schedule.
        per_segment = {j: [] for j in range(1, 9)}
        for slot in range(0, 80):
            for segment in protocol.schedule.segments_in(slot):
                per_segment[segment].append(slot)
        for segment, slots in per_segment.items():
            gaps = [b - a for a, b in zip(slots, slots[1:])]
            assert all(gap >= 1 for gap in gaps)
            # Under saturation, instances settle at the minimum frequency:
            # at most one per `segment` slots on average.
            interior = slots[2:-2]
            if len(interior) >= 2:
                span = interior[-1] - interior[0]
                count = len(interior) - 1
                # Mean inter-instance gap stays close to the minimum
                # frequency; 0.6 leaves room for the heuristic occasionally
                # placing an instance ahead of its latest slot.
                assert span / count >= segment * 0.6


class TestHeuristicBehaviour:
    def test_always_latest_creates_peaks(self):
        """The naive chooser stacks common-multiple slots (the 120! argument)."""
        heuristic = DHBProtocol(n_segments=12)
        naive = DHBProtocol(n_segments=12, chooser=always_latest_chooser)
        for slot in range(0, 200):
            heuristic.handle_request(slot)
            naive.handle_request(slot)
        heuristic_peak = max(heuristic.slot_load(s) for s in range(20, 220))
        naive_peak = max(naive.slot_load(s) for s in range(20, 220))
        assert naive_peak > heuristic_peak

    def test_heuristic_never_misses_deadlines(self):
        protocol = DHBProtocol(n_segments=7, track_clients=True)
        for slot in [0, 0, 1, 3, 3, 8, 20, 21, 22, 23]:
            protocol.handle_request(slot)
        for plan in protocol.clients:
            plan.verify(protocol.periods)


class TestCustomPeriods:
    def test_periods_widen_windows(self):
        protocol = DHBProtocol(periods=PeriodVector([1, 4, 4]), track_clients=True)
        protocol.handle_request(slot=0)
        plan = protocol.clients[0]
        # With the latest-tie heuristic, S2 lands at the far end of its
        # widened window [1, 4].
        assert plan.assignments[1] == 1
        assert plan.assignments[2] == 4
        assert plan.assignments[3] == 3  # least-loaded slot of [1..4] after S2@4

    def test_plan_verifies_under_custom_periods(self):
        protocol = DHBProtocol(periods=[1, 3, 3, 8], track_clients=True)
        for slot in range(10):
            protocol.handle_request(slot)
        for plan in protocol.clients:
            plan.verify(protocol.periods)


class TestConfiguration:
    def test_n_segments_property(self):
        assert DHBProtocol(n_segments=99).n_segments == 99

    def test_periods_as_list(self):
        assert DHBProtocol(periods=[1, 2, 3]).n_segments == 3

    def test_conflicting_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            DHBProtocol(n_segments=5, periods=[1, 2, 3])

    def test_missing_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            DHBProtocol()

    def test_repr(self):
        assert "uniform" in repr(DHBProtocol(n_segments=3))
        assert "custom" in repr(DHBProtocol(periods=[1, 3, 3]))


class TestWeights:
    def test_slot_weight_reports_bytes(self):
        protocol = DHBProtocol(
            n_segments=3, segment_weights=[100.0, 200.0, 300.0]
        )
        protocol.handle_request(slot=0)
        assert protocol.slot_weight(1) == pytest.approx(100.0)
        assert protocol.slot_weight(2) == pytest.approx(200.0)
        assert protocol.slot_weight(3) == pytest.approx(300.0)

    def test_default_weight_equals_load(self):
        protocol = DHBProtocol(n_segments=3)
        protocol.handle_request(slot=0)
        for slot in range(1, 4):
            assert protocol.slot_weight(slot) == protocol.slot_load(slot)


def test_release_before_keeps_future_schedule():
    protocol = DHBProtocol(n_segments=5, track_clients=True)
    protocol.handle_request(slot=0)
    protocol.release_before(3)
    protocol.handle_request(slot=3)  # shares S4, S5 scheduled at 4, 5
    plan = protocol.clients[1]
    assert plan.shared[4] and plan.shared[5]


class TestFastPathEquivalence:
    """The vectorized admission path must be indistinguishable from the
    generic chooser loop — same schedule, same counters, slot by slot."""

    @staticmethod
    def _latest_min_via_generic(protocol):
        """Force the generic chooser loop by using a distinct-but-equal callable."""
        from repro.core.heuristic import latest_min_load_chooser

        protocol.chooser = lambda load, first, last: latest_min_load_chooser(
            load, first, last
        )
        return protocol

    def test_random_trace_matches_generic_loop(self):
        import random

        rng = random.Random(1234)
        fast = DHBProtocol(n_segments=25)
        slow = self._latest_min_via_generic(DHBProtocol(n_segments=25))
        slot = 0
        for _ in range(400):
            slot += rng.choice((0, 0, 0, 1, 1, 3, 10))
            fast.handle_request(slot)
            slow.handle_request(slot)
        assert fast.requests_admitted == slow.requests_admitted == 400
        assert fast.schedule.total_instances == slow.schedule.total_instances
        horizon = slot + 30
        loads_fast = [fast.slot_load(s) for s in range(horizon)]
        loads_slow = [slow.slot_load(s) for s in range(horizon)]
        assert loads_fast == loads_slow
        for s in range(horizon):
            assert fast.schedule.segments_in(s) == slow.schedule.segments_in(s)

    def test_track_clients_uses_generic_loop_and_agrees(self):
        fast = DHBProtocol(n_segments=10)
        tracked = DHBProtocol(n_segments=10, track_clients=True)
        for slot in (0, 0, 2, 5, 5, 9):
            fast.handle_request(slot)
            tracked.handle_request(slot)
        for s in range(25):
            assert fast.schedule.segments_in(s) == tracked.schedule.segments_in(s)
