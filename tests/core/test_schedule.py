"""Tests for repro.core.schedule."""

import pytest

from repro.errors import SchedulingError
from repro.core.schedule import SlotSchedule


def test_add_and_load():
    schedule = SlotSchedule(n_segments=5)
    schedule.add(3, 1)
    schedule.add(3, 2)
    schedule.add(4, 1)
    assert schedule.load(3) == 2
    assert schedule.load(4) == 1
    assert schedule.load(5) == 0
    assert schedule.total_instances == 3


def test_segments_in_preserves_order_and_copies():
    schedule = SlotSchedule(n_segments=5)
    schedule.add(2, 3)
    schedule.add(2, 1)
    listed = schedule.segments_in(2)
    assert listed == [3, 1]
    listed.append(99)
    assert schedule.segments_in(2) == [3, 1]


def test_next_transmission_tracks_latest():
    schedule = SlotSchedule(n_segments=5)
    assert schedule.next_transmission(1) is None
    schedule.add(2, 1)
    schedule.add(5, 1)
    assert schedule.next_transmission(1) == 5


def test_has_instance_within():
    schedule = SlotSchedule(n_segments=5)
    schedule.add(4, 2)
    assert schedule.has_instance_within(2, 2, 5)
    assert not schedule.has_instance_within(2, 5, 9)
    assert not schedule.has_instance_within(3, 0, 100)


def test_release_before_bounds_memory_but_keeps_index():
    schedule = SlotSchedule(n_segments=3)
    schedule.add(1, 1)
    schedule.add(10, 2)
    schedule.release_before(5)
    assert schedule.load(1) == 0  # released
    assert schedule.load(10) == 1
    # The next-transmission index survives GC.
    assert schedule.next_transmission(2) == 10
    assert schedule.occupied_slots() == [10]


def test_adding_into_released_slot_rejected():
    schedule = SlotSchedule(n_segments=3)
    schedule.release_before(10)
    with pytest.raises(SchedulingError):
        schedule.add(5, 1)


def test_release_is_idempotent():
    schedule = SlotSchedule(n_segments=3)
    schedule.add(8, 1)
    schedule.release_before(5)
    schedule.release_before(3)  # going backwards is a no-op
    assert schedule.load(8) == 1


def test_segment_bounds_checked():
    schedule = SlotSchedule(n_segments=3)
    with pytest.raises(SchedulingError):
        schedule.add(1, 0)
    with pytest.raises(SchedulingError):
        schedule.add(1, 4)
    with pytest.raises(SchedulingError):
        schedule.next_transmission(99)


def test_invalid_sizes():
    with pytest.raises(SchedulingError):
        SlotSchedule(n_segments=0)


class TestWeights:
    def test_default_weights_are_unit(self):
        schedule = SlotSchedule(n_segments=3)
        schedule.add(1, 2)
        schedule.add(1, 3)
        assert schedule.weight(1) == pytest.approx(2.0)

    def test_custom_weights_accumulate(self):
        schedule = SlotSchedule(n_segments=3, segment_weights=[10.0, 20.0, 30.0])
        schedule.add(5, 1)
        schedule.add(5, 3)
        assert schedule.weight(5) == pytest.approx(40.0)
        assert schedule.load(5) == 2

    def test_weight_gc(self):
        schedule = SlotSchedule(n_segments=2, segment_weights=[5.0, 5.0])
        schedule.add(1, 1)
        schedule.release_before(2)
        assert schedule.weight(1) == 0.0

    def test_weight_validation(self):
        with pytest.raises(SchedulingError):
            SlotSchedule(n_segments=2, segment_weights=[1.0])
        with pytest.raises(SchedulingError):
            SlotSchedule(n_segments=2, segment_weights=[1.0, -1.0])
