"""Tests for repro.core.schedule."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.core.heuristic import latest_min_load_chooser
from repro.core.schedule import SlotSchedule


def test_add_and_load():
    schedule = SlotSchedule(n_segments=5)
    schedule.add(3, 1)
    schedule.add(3, 2)
    schedule.add(4, 1)
    assert schedule.load(3) == 2
    assert schedule.load(4) == 1
    assert schedule.load(5) == 0
    assert schedule.total_instances == 3


def test_segments_in_preserves_order_and_copies():
    schedule = SlotSchedule(n_segments=5)
    schedule.add(2, 3)
    schedule.add(2, 1)
    listed = schedule.segments_in(2)
    assert listed == [3, 1]
    listed.append(99)
    assert schedule.segments_in(2) == [3, 1]


def test_next_transmission_tracks_latest():
    schedule = SlotSchedule(n_segments=5)
    assert schedule.next_transmission(1) is None
    schedule.add(2, 1)
    schedule.add(5, 1)
    assert schedule.next_transmission(1) == 5


def test_has_instance_within():
    schedule = SlotSchedule(n_segments=5)
    schedule.add(4, 2)
    assert schedule.has_instance_within(2, 2, 5)
    assert not schedule.has_instance_within(2, 5, 9)
    assert not schedule.has_instance_within(3, 0, 100)


def test_release_before_bounds_memory_but_keeps_index():
    schedule = SlotSchedule(n_segments=3)
    schedule.add(1, 1)
    schedule.add(10, 2)
    schedule.release_before(5)
    assert schedule.load(1) == 0  # released
    assert schedule.load(10) == 1
    # The next-transmission index survives GC.
    assert schedule.next_transmission(2) == 10
    assert schedule.occupied_slots() == [10]


def test_adding_into_released_slot_rejected():
    schedule = SlotSchedule(n_segments=3)
    schedule.release_before(10)
    with pytest.raises(SchedulingError):
        schedule.add(5, 1)


def test_release_is_idempotent():
    schedule = SlotSchedule(n_segments=3)
    schedule.add(8, 1)
    schedule.release_before(5)
    schedule.release_before(3)  # going backwards is a no-op
    assert schedule.load(8) == 1


def test_segment_bounds_checked():
    schedule = SlotSchedule(n_segments=3)
    with pytest.raises(SchedulingError):
        schedule.add(1, 0)
    with pytest.raises(SchedulingError):
        schedule.add(1, 4)
    with pytest.raises(SchedulingError):
        schedule.next_transmission(99)


def test_invalid_sizes():
    with pytest.raises(SchedulingError):
        SlotSchedule(n_segments=0)


def test_release_before_large_slot_jump():
    """Regression: a sparse trace may jump the floor forward by millions of
    slots; the release must pay for occupied slots, not for the gap."""
    schedule = SlotSchedule(n_segments=4)
    schedule.add(3, 1)
    schedule.add(10, 2)
    schedule.release_before(10**9)  # O(gap) would take minutes here
    assert schedule.occupied_slots() == []
    assert schedule.load(3) == 0
    assert schedule.load(10) == 0
    assert schedule.load(10**9 + 5) == 0
    # The floor moved: old slots are rejected, new ones work.
    with pytest.raises(SchedulingError):
        schedule.add(10, 1)
    schedule.add(10**9 + 2, 3)
    assert schedule.load(10**9 + 2) == 1
    assert schedule.next_transmission(3) == 10**9 + 2


def test_interleaved_adds_and_large_releases():
    schedule = SlotSchedule(n_segments=3)
    slot = 0
    for hop in (1, 7, 5_000, 123, 10**6, 42):
        schedule.add(slot + 2, 1)
        schedule.add(slot + 2, 3)
        assert schedule.load(slot + 2) == 2
        slot += hop
        schedule.release_before(slot)
    assert schedule.total_instances == 12


class TestWindowLoads:
    def test_view_matches_loads(self):
        schedule = SlotSchedule(n_segments=5)
        for slot, segment in ((2, 1), (2, 2), (4, 3), (5, 4)):
            schedule.add(slot, segment)
        window = schedule.window_loads(1, 6)
        assert window.tolist() == [0, 2, 0, 1, 1, 0]
        assert window.dtype == np.int64

    def test_view_is_live(self):
        schedule = SlotSchedule(n_segments=5)
        window = schedule.window_loads(1, 3)
        assert window.tolist() == [0, 0, 0]
        schedule.add(2, 1)
        assert window.tolist() == [0, 1, 0]

    def test_empty_window_rejected(self):
        schedule = SlotSchedule(n_segments=2)
        with pytest.raises(SchedulingError):
            schedule.window_loads(5, 4)

    def test_window_below_released_floor_rejected(self):
        schedule = SlotSchedule(n_segments=2)
        schedule.release_before(10)
        with pytest.raises(SchedulingError):
            schedule.window_loads(8, 12)


class TestChooseLatestMin:
    def test_matches_reference_chooser(self):
        schedule = SlotSchedule(n_segments=6)
        for slot, segment in ((1, 1), (2, 2), (2, 3), (4, 4)):
            schedule.add(slot, segment)
        for first, last in ((1, 4), (2, 2), (1, 6), (3, 5)):
            assert schedule.choose_latest_min(first, last) == (
                latest_min_load_chooser(schedule.load, first, last)
            )

    def test_large_window_uses_vector_path(self):
        schedule = SlotSchedule(n_segments=99)
        schedule.add(30, 1)
        schedule.add(77, 2)
        # Window of 99 slots (> the small-window threshold).
        assert schedule.choose_latest_min(1, 99) == latest_min_load_chooser(
            schedule.load, 1, 99
        )

    def test_empty_window_rejected(self):
        schedule = SlotSchedule(n_segments=2)
        with pytest.raises(SchedulingError):
            schedule.choose_latest_min(3, 2)


class TestPlaceLatestMin:
    def test_places_where_choose_would(self):
        reference = SlotSchedule(n_segments=4)
        fused = SlotSchedule(n_segments=4)
        for slot, segment in ((1, 1), (3, 2), (3, 3)):
            reference.add(slot, segment)
            fused.add(slot, segment)
        expected = reference.choose_latest_min(1, 4)
        reference.add(expected, 4)
        chosen = fused.place_latest_min(1, 4, 4)
        assert chosen == expected
        for slot in range(6):
            assert fused.segments_in(slot) == reference.segments_in(slot)
        assert fused.next_transmission(4) == reference.next_transmission(4)

    def test_validates_like_add(self):
        schedule = SlotSchedule(n_segments=2)
        with pytest.raises(SchedulingError):
            schedule.place_latest_min(1, 3, 9)
        with pytest.raises(SchedulingError):
            schedule.place_latest_min(4, 3, 1)
        schedule.release_before(5)
        with pytest.raises(SchedulingError):
            schedule.place_latest_min(3, 8, 1)


@given(
    instances=st.lists(
        st.tuples(st.integers(0, 60), st.integers(1, 8)), max_size=60
    ),
    first=st.integers(0, 50),
    width=st.integers(0, 30),
)
def test_choose_latest_min_agrees_with_reference(instances, first, width):
    """Property: the fused chooser == the paper's reference rule, always."""
    schedule = SlotSchedule(n_segments=8)
    for slot, segment in instances:
        schedule.add(slot, segment)
    last = first + width
    assert schedule.choose_latest_min(first, last) == latest_min_load_chooser(
        schedule.load, first, last
    )


@given(
    instances=st.lists(
        st.tuples(st.integers(0, 200), st.integers(1, 5)), max_size=40
    ),
    floor=st.integers(0, 250),
)
def test_release_keeps_loads_consistent(instances, floor):
    """Property: after any release, loads match a dict-of-lists rebuild."""
    schedule = SlotSchedule(n_segments=5)
    expected = {}
    for slot, segment in instances:
        schedule.add(slot, segment)
        expected.setdefault(slot, []).append(segment)
    schedule.release_before(floor)
    for slot in range(260):
        want = len(expected.get(slot, ())) if slot >= floor else 0
        assert schedule.load(slot) == want


class TestWeights:
    def test_default_weights_are_unit(self):
        schedule = SlotSchedule(n_segments=3)
        schedule.add(1, 2)
        schedule.add(1, 3)
        assert schedule.weight(1) == pytest.approx(2.0)

    def test_custom_weights_accumulate(self):
        schedule = SlotSchedule(n_segments=3, segment_weights=[10.0, 20.0, 30.0])
        schedule.add(5, 1)
        schedule.add(5, 3)
        assert schedule.weight(5) == pytest.approx(40.0)
        assert schedule.load(5) == 2

    def test_weight_gc(self):
        schedule = SlotSchedule(n_segments=2, segment_weights=[5.0, 5.0])
        schedule.add(1, 1)
        schedule.release_before(2)
        assert schedule.weight(1) == 0.0

    def test_weight_validation(self):
        with pytest.raises(SchedulingError):
            SlotSchedule(n_segments=2, segment_weights=[1.0])
        with pytest.raises(SchedulingError):
            SlotSchedule(n_segments=2, segment_weights=[1.0, -1.0])
