"""Tests for repro.core.interactive — pause/resume (VCR) extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dhb import DHBProtocol
from repro.core.interactive import InteractiveDHB
from repro.errors import ConfigurationError, SchedulingError


def test_fresh_requests_match_plain_dhb():
    interactive = InteractiveDHB(n_segments=8, track_clients=True)
    plain = DHBProtocol(n_segments=8, track_clients=True)
    for slot in [0, 0, 2, 5, 9]:
        interactive.handle_request(slot)
        plain.handle_request(slot)
    for a, b in zip(interactive.clients, plain.clients):
        assert a.assignments == b.assignments
        assert a.shared == b.shared


def test_resume_covers_only_the_suffix():
    protocol = InteractiveDHB(n_segments=6, track_clients=True)
    plan = protocol.handle_request(slot=0, start_segment=4)
    assert sorted(plan.assignments) == [4, 5, 6]
    protocol.verify_resumed_plan(plan, start_segment=4)


def test_resume_deadlines_are_shifted():
    """A resumer watching S4 first needs it in its very first slot."""
    protocol = InteractiveDHB(n_segments=6, track_clients=True)
    plan = protocol.handle_request(slot=10, start_segment=4)
    assert plan.assignments[4] == 11
    assert plan.assignments[5] <= 12
    assert plan.assignments[6] <= 13


def test_resumer_shares_fresh_clients_instances_when_timely():
    protocol = InteractiveDHB(n_segments=6, track_clients=True)
    protocol.handle_request(slot=0)          # fresh: S_j scheduled at slot j
    plan = protocol.handle_request(slot=2, start_segment=4)
    # The fresh client's S4 sits at slot 4, but the resumer at slot 2 needs
    # S4 by slot 3 (window length 1) — too late, so it schedules its own.
    assert plan.assignments[4] == 3
    assert not plan.shared[4]
    # A resumer arriving one slot before the fresh instance can share it:
    late = protocol.handle_request(slot=3, start_segment=4)
    assert late.shared[4] and late.assignments[4] == 4


def test_duplicate_future_instances_allowed():
    """Resumed windows legitimately break the single-future-instance rule."""
    protocol = InteractiveDHB(n_segments=6, track_clients=True)
    protocol.handle_request(slot=0)           # S6 at slot 7
    protocol.handle_request(slot=0, start_segment=6)  # needs S6 by slot 1
    instances = [
        slot
        for slot in range(1, 10)
        for segment in protocol.schedule.segments_in(slot)
        if segment == 6
    ]
    assert len(instances) == 2


def test_window_length():
    protocol = InteractiveDHB(n_segments=6)
    assert protocol.window_length(4, 1) == 4
    assert protocol.window_length(4, 4) == 1
    assert protocol.window_length(6, 4) == 3
    with pytest.raises(SchedulingError):
        protocol.window_length(2, 4)


def test_custom_periods_resume():
    protocol = InteractiveDHB(periods=[1, 3, 3, 8], track_clients=True)
    plan = protocol.handle_request(slot=0, start_segment=2)
    protocol.verify_resumed_plan(plan, start_segment=2)
    # S2's window relative to a start at S2: T[2]-T[2]+1 = 1.
    assert plan.assignments[2] == 1
    # S4: T[4]-T[2]+1 = 6.
    assert plan.assignments[4] <= 6


def test_counters():
    protocol = InteractiveDHB(n_segments=4)
    protocol.handle_request(0)
    protocol.handle_request(1, start_segment=2)
    assert protocol.requests_admitted == 2
    assert protocol.resumes_admitted == 1


@settings(max_examples=100, deadline=None)
@given(
    events=st.lists(
        st.tuples(st.integers(0, 30), st.integers(1, 10)),
        min_size=1,
        max_size=40,
    ).map(lambda evs: sorted(evs)),
)
def test_all_plans_on_time_property(events):
    protocol = InteractiveDHB(n_segments=10, track_clients=True)
    starts = []
    for slot, start_segment in events:
        protocol.handle_request(slot, start_segment=start_segment)
        starts.append(start_segment)
    for plan, start_segment in zip(protocol.clients, starts):
        protocol.verify_resumed_plan(plan, start_segment)


def test_vcr_activity_costs_bandwidth():
    """Resumes fragment sharing, so bandwidth grows with VCR activity."""
    calm = InteractiveDHB(n_segments=20)
    busy = InteractiveDHB(n_segments=20)
    for slot in range(0, 100, 2):
        calm.handle_request(slot)
        busy.handle_request(slot)
        busy.handle_request(slot + 1, start_segment=(slot % 15) + 2)
    assert busy.schedule.total_instances > calm.schedule.total_instances


def test_validation():
    with pytest.raises(ConfigurationError):
        InteractiveDHB()
    protocol = InteractiveDHB(n_segments=5)
    with pytest.raises(ConfigurationError):
        protocol.handle_request(0, start_segment=0)
    with pytest.raises(ConfigurationError):
        protocol.handle_request(0, start_segment=6)
