"""Tests for benchmarks/check_regression.py (the CI bench gate)."""

import json
import pathlib
import sys

import pytest

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT))

from benchmarks.check_regression import (  # noqa: E402
    calibration_ratio,
    compare,
    main,
)


#: Benches whose fresh detail must carry ``verified: 1`` for the gate.
VERIFIED_BENCHES = (
    "fig7_quick_parallel",
    "cluster_quick_parallel",
    "runtime_quick",
    "fig7_columnar",
    "checkpoint_resume_quick",
    "adaptive_day_quick",
    "serve_loopback_quick",
)

#: Benches whose fresh detail must stay under the peak-RSS ceiling.
MEMORY_BENCHES = ("micro_dhb_10m", "fig7_columnar")


def _report(
    seconds_by_name,
    calibration=0.05,
    verified=1,
    rss_mb=200.0,
    speedup=8.0,
    overhead_pct=1.5,
    clients_per_sec=45.0,
    p99_wait_ms=55.0,
    edge_seconds=0.02,
    cluster_seconds=0.02,
    edge_hit_ratio=0.95,
    edge_expected=0.95,
    adaptive_static_peak=6.0,
    adaptive_peak=5.0,
    adaptive_seconds=0.02,
    sweep_seconds=0.02,
):
    seconds_by_name = dict(seconds_by_name)
    seconds_by_name.setdefault("adaptive_day_quick", adaptive_seconds)
    seconds_by_name.setdefault("fig7_quick_serial", sweep_seconds)
    for name in VERIFIED_BENCHES + MEMORY_BENCHES:
        seconds_by_name.setdefault(name, 0.5)
    seconds_by_name.setdefault("edge_quick", edge_seconds)
    seconds_by_name.setdefault("cluster_quick", cluster_seconds)
    benches = {
        name: {"seconds": seconds, "detail": {}}
        for name, seconds in seconds_by_name.items()
    }
    for name in VERIFIED_BENCHES:
        benches[name]["detail"]["verified"] = verified
    for name in MEMORY_BENCHES:
        benches[name]["detail"]["peak_rss_mb"] = rss_mb
    benches["micro_dhb_10m"]["detail"]["speedup_vs_scalar"] = speedup
    benches["checkpoint_resume_quick"]["detail"]["overhead_pct"] = overhead_pct
    benches["serve_loopback_quick"]["detail"].update(
        clients_per_sec=clients_per_sec, p99_wait_ms=p99_wait_ms
    )
    benches["edge_quick"]["detail"].update(
        hit_ratio=edge_hit_ratio, expected_hit_ratio=edge_expected
    )
    benches["adaptive_day_quick"]["detail"].update(
        static_peak=adaptive_static_peak, adaptive_peak=adaptive_peak
    )
    return {
        "schema": 1,
        "calibration_seconds": calibration,
        "benches": benches,
    }


class TestCalibrationRatio:
    def test_ratio_of_spin_loops(self):
        fresh = _report({}, calibration=0.10)
        baseline = _report({}, calibration=0.05)
        assert calibration_ratio(fresh, baseline) == pytest.approx(2.0)

    def test_missing_calibration_means_no_scaling(self):
        fresh = _report({})
        baseline = _report({})
        del baseline["calibration_seconds"]
        assert calibration_ratio(fresh, baseline) == 1.0


class TestCompare:
    def test_identical_reports_pass(self):
        report = _report({"fig7_quick_parallel": 0.5, "micro": 0.03})
        _lines, failures = compare(report, report)
        assert failures == []

    def test_large_regression_fails(self):
        baseline = _report({"fig7_quick_parallel": 0.5, "micro": 0.2})
        fresh = _report({"fig7_quick_parallel": 0.5, "micro": 0.9})
        _lines, failures = compare(fresh, baseline, threshold=2.0)
        assert len(failures) == 1
        assert "micro" in failures[0]

    def test_slow_machine_does_not_fail_the_gate(self):
        baseline = _report({"fig7_quick_parallel": 0.5, "micro": 0.2}, calibration=0.05)
        # Everything (benches and spin loop) is 3x slower: same machine-relative
        # speed, so the calibration scaling must absorb it.
        fresh = _report(
            {"fig7_quick_parallel": 1.5, "micro": 0.6}, calibration=0.15
        )
        _lines, failures = compare(fresh, baseline, threshold=2.0)
        assert failures == []

    def test_noise_floor_forgives_tiny_benches(self):
        baseline = _report({"fig7_quick_parallel": 0.5, "tiny": 0.0002})
        fresh = _report({"fig7_quick_parallel": 0.5, "tiny": 0.0009})  # 4.5x, but microseconds
        _lines, failures = compare(fresh, baseline, threshold=2.0)
        assert failures == []

    def test_missing_bench_fails(self):
        baseline = _report({"fig7_quick_parallel": 0.5, "gone": 0.1})
        fresh = _report({"fig7_quick_parallel": 0.5})
        _lines, failures = compare(fresh, baseline)
        assert any("gone" in failure for failure in failures)

    def test_unverified_parallel_equality_fails(self):
        baseline = _report({"fig7_quick_parallel": 0.5})
        fresh = _report({"fig7_quick_parallel": 0.5}, verified=0)
        _lines, failures = compare(fresh, baseline)
        assert any("equality" in failure for failure in failures)

    def test_memory_ceiling_fails(self):
        baseline = _report({})
        fresh = _report({}, rss_mb=2048.0)
        _lines, failures = compare(fresh, baseline)
        assert any("peak RSS" in failure for failure in failures)
        assert len(failures) == len(MEMORY_BENCHES)

    def test_missing_rss_detail_fails(self):
        baseline = _report({})
        fresh = _report({})
        for name in MEMORY_BENCHES:
            del fresh["benches"][name]["detail"]["peak_rss_mb"]
        _lines, failures = compare(fresh, baseline)
        assert any("peak_rss_mb" in failure for failure in failures)

    def test_low_columnar_speedup_fails(self):
        baseline = _report({})
        fresh = _report({}, speedup=3.0)
        _lines, failures = compare(fresh, baseline)
        assert any("speedup" in failure for failure in failures)

    def test_checkpoint_overhead_ceiling_fails(self):
        baseline = _report({})
        fresh = _report({}, overhead_pct=9.0)
        _lines, failures = compare(fresh, baseline)
        assert any("journaling overhead" in failure for failure in failures)

    def test_missing_checkpoint_overhead_fails(self):
        baseline = _report({})
        fresh = _report({})
        del fresh["benches"]["checkpoint_resume_quick"]["detail"]["overhead_pct"]
        _lines, failures = compare(fresh, baseline)
        assert any("journaling overhead" in failure for failure in failures)

    def test_low_serve_throughput_fails(self):
        baseline = _report({})
        fresh = _report({}, clients_per_sec=10.0)
        _lines, failures = compare(fresh, baseline)
        assert any("clients/sec" in failure for failure in failures)

    def test_high_serve_p99_fails(self):
        baseline = _report({})
        fresh = _report({}, p99_wait_ms=120.0)
        _lines, failures = compare(fresh, baseline)
        assert any("p99 wait" in failure for failure in failures)

    def test_missing_serve_detail_fails(self):
        baseline = _report({})
        fresh = _report({})
        fresh["benches"]["serve_loopback_quick"]["detail"].clear()
        _lines, failures = compare(fresh, baseline)
        assert any("clients/sec" in failure for failure in failures)
        assert any("p99 wait" in failure for failure in failures)

    def test_edge_over_cluster_ceiling_fails(self):
        baseline = _report({})
        # The ratio is fresh-report-internal, so the baseline's timings
        # don't matter; a noise-proof 10s vs 1s fresh split must trip it.
        fresh = _report({}, edge_seconds=10.0, cluster_seconds=1.0)
        _lines, failures = compare(fresh, baseline)
        assert any("1.5x ceiling" in failure for failure in failures)

    def test_edge_hit_ratio_below_expectation_fails(self):
        baseline = _report({})
        fresh = _report({}, edge_hit_ratio=0.7, edge_expected=0.9)
        _lines, failures = compare(fresh, baseline)
        assert any("analytic" in failure for failure in failures)

    def test_edge_hit_ratio_within_slack_passes(self):
        report = _report({}, edge_hit_ratio=0.87, edge_expected=0.9)
        _lines, failures = compare(report, report)
        assert failures == []

    def test_missing_edge_detail_fails(self):
        baseline = _report({})
        fresh = _report({})
        fresh["benches"]["edge_quick"]["detail"].clear()
        _lines, failures = compare(fresh, baseline)
        assert any("expected_hit_ratio" in failure for failure in failures)

    def test_adaptive_peak_above_static_fails(self):
        baseline = _report({})
        fresh = _report({}, adaptive_peak=9.0, adaptive_static_peak=6.0)
        _lines, failures = compare(fresh, baseline)
        assert any("static DHB worst case" in failure for failure in failures)

    def test_adaptive_peak_at_static_worst_case_passes(self):
        report = _report({}, adaptive_peak=6.0, adaptive_static_peak=6.0)
        _lines, failures = compare(report, report)
        assert failures == []

    def test_missing_adaptive_peaks_fail(self):
        baseline = _report({})
        fresh = _report({})
        del fresh["benches"]["adaptive_day_quick"]["detail"]["static_peak"]
        _lines, failures = compare(fresh, baseline)
        assert any("static/adaptive peaks" in failure for failure in failures)

    def test_adaptive_over_sweep_ceiling_fails(self):
        baseline = _report({})
        # Fresh-report-internal ratio, like the edge/cluster gate: a
        # noise-proof 10s day study vs a 1s stationary sweep must trip it.
        fresh = _report({}, adaptive_seconds=10.0, sweep_seconds=1.0)
        _lines, failures = compare(fresh, baseline)
        assert any("fig7_quick_serial" in failure for failure in failures)


class TestMain:
    def _write(self, path, report):
        path.write_text(json.dumps(report))
        return str(path)

    def test_pass_and_fail_exit_codes(self, tmp_path, capsys):
        baseline = self._write(
            tmp_path / "base.json", _report({"fig7_quick_parallel": 0.5})
        )
        good = self._write(tmp_path / "good.json", _report({"fig7_quick_parallel": 0.6}))
        bad = self._write(tmp_path / "bad.json", _report({"fig7_quick_parallel": 5.0}))
        assert main(["--baseline", baseline, "--fresh", good]) == 0
        assert main(["--baseline", baseline, "--fresh", bad]) == 1
        capsys.readouterr()

    def test_malformed_baseline_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        fresh = self._write(tmp_path / "fresh.json", _report({}))
        assert main(["--baseline", missing, "--fresh", fresh]) == 2
        capsys.readouterr()

    def test_committed_baseline_is_current_schema(self):
        baseline = json.loads((_REPO_ROOT / "BENCH_sweep.json").read_text())
        assert baseline["calibration_seconds"] > 0.0
        for name in VERIFIED_BENCHES:
            assert name in baseline["benches"]
            assert baseline["benches"][name]["detail"]["verified"] == 1
        for name in MEMORY_BENCHES:
            assert baseline["benches"][name]["detail"]["peak_rss_mb"] < 1024.0
        assert baseline["benches"]["micro_dhb_10m"]["detail"][
            "speedup_vs_scalar"
        ] >= 5.0
        assert baseline["benches"]["checkpoint_resume_quick"]["detail"][
            "overhead_pct"
        ] < 5.0
        serve_detail = baseline["benches"]["serve_loopback_quick"]["detail"]
        assert serve_detail["clients_per_sec"] >= 25.0
        assert serve_detail["p99_wait_ms"] <= 75.0
        edge_detail = baseline["benches"]["edge_quick"]["detail"]
        assert edge_detail["hit_ratio"] >= edge_detail["expected_hit_ratio"] - 0.05
        assert (
            baseline["benches"]["edge_quick"]["seconds"]
            <= 1.5 * baseline["benches"]["cluster_quick"]["seconds"] + 0.005
        )
        adaptive_detail = baseline["benches"]["adaptive_day_quick"]["detail"]
        assert adaptive_detail["adaptive_peak"] <= adaptive_detail["static_peak"]
        assert adaptive_detail["retunes"] >= 1
        assert (
            baseline["benches"]["adaptive_day_quick"]["seconds"]
            <= 1.5 * baseline["benches"]["fig7_quick_serial"]["seconds"] + 0.005
        )
