"""Tests for repro.cli."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in [
        "figures", "fig7", "fig8", "fig9", "variants", "ablations", "catalog",
    ]:
        args = parser.parse_args([command])
        assert args.command == command


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig42"])


def test_figures_command(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1." in out and "Figure 5." in out
    assert "S2 S4 S2 S5 S2 S4" in out  # the NPB row of Figure 2


def test_variants_command(capsys):
    assert main(["variants"]) == 0
    out = capsys.readouterr().out
    assert "DHB-a" in out and "DHB-d" in out
    assert "951" in out  # the calibrated peak rate


def test_fig7_quick(capsys):
    assert main(["fig7", "--quick", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "Figure 7" in out
    assert "DHB Protocol" in out


def test_fig8_quick(capsys):
    assert main(["fig8", "--quick"]) == 0
    assert "Figure 8" in capsys.readouterr().out


def test_fig9_quick(capsys):
    assert main(["fig9", "--quick"]) == 0
    assert "DHB-c" in capsys.readouterr().out


def test_catalog_quick(capsys):
    assert main(["catalog", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "totals:" in out
    assert "Zipf" in out
