"""Tests for repro.cli."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in [
        "figures", "fig7", "fig8", "fig9", "variants", "ablations", "catalog",
        "cluster",
    ]:
        args = parser.parse_args([command])
        assert args.command == command


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig42"])


def test_figures_command(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    assert "Figure 1." in out and "Figure 5." in out
    assert "S2 S4 S2 S5 S2 S4" in out  # the NPB row of Figure 2


def test_variants_command(capsys):
    assert main(["variants"]) == 0
    out = capsys.readouterr().out
    assert "DHB-a" in out and "DHB-d" in out
    assert "951" in out  # the calibrated peak rate


def test_fig7_quick(capsys):
    assert main(["fig7", "--quick", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "Figure 7" in out
    assert "DHB Protocol" in out


def test_fig8_quick(capsys):
    assert main(["fig8", "--quick"]) == 0
    assert "Figure 8" in capsys.readouterr().out


def test_fig9_quick(capsys):
    assert main(["fig9", "--quick"]) == 0
    assert "DHB-c" in capsys.readouterr().out


def test_catalog_quick(capsys):
    assert main(["catalog", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "totals:" in out
    assert "Zipf" in out


def test_metrics_and_trace_out(tmp_path, capsys):
    metrics_path = tmp_path / "run.json"
    trace_path = tmp_path / "trace.jsonl"
    assert (
        main(
            [
                "fig7",
                "--quick",
                "--metrics-out",
                str(metrics_path),
                "--trace-out",
                str(trace_path),
            ]
        )
        == 0
    )
    assert "Figure 7" in capsys.readouterr().out

    document = json.loads(metrics_path.read_text())
    assert document["schema"] == 1
    manifest = document["manifest"]
    assert manifest["experiment"] == "fig7"
    assert "DHB Protocol" in manifest["protocols"]
    assert manifest["seed"] == 2001
    assert manifest["duration_seconds"] > 0.0
    counters = document["metrics"]["counters"]
    assert counters["measure.points"] == 12  # 4 protocols x 3 quick rates
    assert counters["sim.slots"] > 0

    lines = trace_path.read_text().splitlines()
    assert document["trace"] == {"path": str(trace_path), "records": len(lines)}
    records = [json.loads(line) for line in lines]
    slot_records = [r for r in records if r["kind"] == "slot"]
    assert slot_records  # the sweep simulated slotted protocols
    first = slot_records[0]
    assert {"slot", "streams", "instances", "arrivals", "measured"} <= set(first)
    assert {r["protocol"] for r in slot_records} >= {"DHB Protocol", "UD Protocol"}


def test_metrics_out_alone(tmp_path):
    metrics_path = tmp_path / "run.json"
    assert main(["fig8", "--quick", "--metrics-out", str(metrics_path)]) == 0
    document = json.loads(metrics_path.read_text())
    assert document["manifest"]["experiment"] == "fig8"
    assert document["trace"] is None


def test_observability_flags_rejected_for_table_commands(capsys):
    with pytest.raises(SystemExit):
        main(["variants", "--metrics-out", "x.json"])
    assert "--metrics-out" in capsys.readouterr().err


def test_cluster_quick(capsys):
    assert main(["cluster", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "[baseline]" in out and "[skewed]" in out and "[crash]" in out
    assert "failover_in" in out  # the per-server table header


def test_cluster_single_scenario_with_observability(tmp_path, capsys):
    metrics_path = tmp_path / "cluster.json"
    trace_path = tmp_path / "cluster.jsonl"
    assert (
        main(
            [
                "cluster",
                "--quick",
                "--scenario",
                "crash",
                "--metrics-out",
                str(metrics_path),
                "--trace-out",
                str(trace_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "[crash]" in out and "[baseline]" not in out

    document = json.loads(metrics_path.read_text())
    assert document["schema"] == 1
    manifest = document["manifest"]
    assert manifest["experiment"] == "cluster"
    assert manifest["protocols"] == ["crash"]
    assert manifest["params"]["scenario"] == "crash"
    counters = document["metrics"]["counters"]
    assert counters["cluster.crashes"] == 1
    assert counters["cluster.failover.instances"] > 0
    assert counters["cluster.failover.lost"] == 0
    assert counters["cluster.slots"] > 0

    records = [
        json.loads(line) for line in trace_path.read_text().splitlines()
    ]
    assert document["trace"]["records"] == len(records)
    cluster_records = [r for r in records if r["kind"] == "cluster-slot"]
    assert cluster_records
    first = cluster_records[0]
    assert {"slot", "streams", "servers", "arrivals", "rejected"} <= set(first)
    assert [s["id"] for s in first["servers"]] == [0, 1, 2, 3]
    down = [
        r for r in cluster_records if not all(s["alive"] for s in r["servers"])
    ]
    assert down  # the crash window shows up with server ids in the trace


def test_scenario_flag_rejected_outside_cluster(capsys):
    with pytest.raises(SystemExit):
        main(["fig7", "--quick", "--scenario", "crash"])
    assert "--scenario" in capsys.readouterr().err


def test_parser_knows_edge():
    parser = build_parser()
    args = parser.parse_args(
        [
            "edge",
            "--quick",
            "--cache-budget",
            "0.5",
            "--prefix-policy",
            "uniform",
            "--classes",
            "gold:3:0.8,bronze:1:0.2",
        ]
    )
    assert args.command == "edge"
    assert args.cache_budget == pytest.approx(0.5)
    assert args.prefix_policy == "uniform"
    with pytest.raises(SystemExit):
        parser.parse_args(["edge", "--prefix-policy", "lru"])


def test_edge_quick(capsys):
    assert main(["edge", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "hit ratio" in out
    assert "saved" in out
    assert "bound" in out


def test_edge_quick_with_metrics(tmp_path, capsys):
    metrics_path = tmp_path / "edge.json"
    assert (
        main(["edge", "--quick", "--metrics-out", str(metrics_path)]) == 0
    )
    assert "hit ratio" in capsys.readouterr().out
    document = json.loads(metrics_path.read_text())
    assert document["manifest"]["experiment"] == "edge"
    counters = document["metrics"]["counters"]
    assert counters["edge.cache.hits"] > 0
    assert "edge.class.premium.requests" in counters


def test_edge_rejects_bad_classes(capsys):
    # Configuration errors surface as a clean exit code 2, no traceback.
    assert main(["edge", "--quick", "--classes", "gold:3"]) == 2
    err = capsys.readouterr().err
    assert "name:weight:share" in err
    assert "Traceback" not in err


@pytest.mark.parametrize(
    "argv,flag",
    [
        (["fig7", "--quick", "--cache-budget", "0.5"], "--cache-budget"),
        (["cluster", "--quick", "--prefix-policy", "uniform"], "--prefix-policy"),
        (["fig8", "--quick", "--classes", "a:1:0.5"], "--classes"),
    ],
)
def test_edge_flags_rejected_on_wrong_command(argv, flag, capsys):
    with pytest.raises(SystemExit):
        main(argv)
    assert flag in capsys.readouterr().err


def test_parser_knows_serve_and_loadgen():
    parser = build_parser()
    assert parser.parse_args(["serve"]).command == "serve"
    args = parser.parse_args(["loadgen", "--connect", "127.0.0.1:1", "--clients", "5"])
    assert args.command == "loadgen"
    assert args.clients == 5


def test_loadgen_requires_connect(capsys):
    with pytest.raises(SystemExit):
        main(["loadgen"])
    assert "--connect" in capsys.readouterr().err


@pytest.mark.parametrize(
    "argv,flag",
    [
        (["fig7", "--quick", "--serve-seconds", "1"], "--serve-seconds"),
        (["fig7", "--quick", "--replicas", "2"], "--replicas"),
        (["serve", "--clients", "5"], "--clients"),
        (["serve", "--compare-sim"], "--compare-sim"),
        (["fig7", "--quick", "--register-timeout", "1"], "--register-timeout"),
    ],
)
def test_serving_flags_rejected_on_wrong_command(argv, flag, capsys):
    with pytest.raises(SystemExit):
        main(argv)
    assert flag in capsys.readouterr().err


def test_socket_backend_without_workers_is_a_clean_error(capsys):
    # Satellite bugfix: no traceback, an actionable message, exit code 2.
    rc = main(
        [
            "fig7",
            "--quick",
            "--backend",
            "socket",
            "--bind",
            "127.0.0.1:0",
            "--jobs",
            "1",
            "--register-timeout",
            "0.2",
        ]
    )
    assert rc == 2
    err = capsys.readouterr().err
    assert "repro-cli: error:" in err
    assert "no workers registered" in err
    assert "repro-cli worker --connect" in err
    assert "Traceback" not in err


def test_serve_loadgen_loopback_pair(capsys, tmp_path):
    """The CLI pair end to end: daemon thread + loadgen with every gate on."""
    import socket
    import threading

    # Pick a free loopback port up front; loadgen's built-in connect retry
    # (wait_for_server) absorbs the race with the daemon thread binding it.
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]

    thread = threading.Thread(
        target=main,
        args=(
            [
                "serve",
                "--bind",
                f"127.0.0.1:{port}",
                "--slot-duration",
                "0.05",
                "--segments",
                "6",
                "--serve-seconds",
                "6",
            ],
        ),
        daemon=True,
    )
    thread.start()

    metrics_path = tmp_path / "loadgen.json"
    rc = main(
        [
            "loadgen",
            "--connect",
            f"127.0.0.1:{port}",
            "--clients",
            "30",
            "--duration",
            "1",
            "--arrivals",
            "uniform",
            "--max-dropped",
            "0",
            "--p99-bound",
            "0.15",
            "--compare-sim",
            "--metrics-out",
            str(metrics_path),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    summary = json.loads(out[out.index("{") : out.rindex("}") + 1])
    assert summary["dropped"] == 0
    assert summary["completed"] == 30
    assert summary["simulation"]["within_tolerance"] is True
    document = json.loads(metrics_path.read_text())
    assert document["metrics"]["counters"]["loadgen.sessions.completed"] == 30
    thread.join(timeout=15)


# ---------------------------------------------------------------------------
# --workload and adaptive-study
# ---------------------------------------------------------------------------


def test_parser_knows_adaptive_study_and_workload():
    parser = build_parser()
    args = parser.parse_args(
        ["adaptive-study", "--quick", "--workload", "flash:peak=100,decay=1"]
    )
    assert args.command == "adaptive-study"
    assert args.workload == ["flash:peak=100,decay=1"]
    args = parser.parse_args(
        ["fig7", "--workload", "20", "--workload", "diurnal:child,peak=50"]
    )
    assert args.workload == ["20", "diurnal:child,peak=50"]


def test_adaptive_study_quick(capsys):
    assert main(["adaptive-study", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "static-peak" in out and "adaptive-peak" in out
    assert "verified: yes" in out


def test_adaptive_study_quick_with_metrics(tmp_path, capsys):
    metrics_path = tmp_path / "adaptive.json"
    rc = main(
        ["adaptive-study", "--quick", "--metrics-out", str(metrics_path)]
    )
    assert rc == 0
    document = json.loads(metrics_path.read_text())
    assert document["manifest"]["experiment"] == "adaptive-study"
    assert document["manifest"]["params"]["workload"]
    assert document["metrics"]["counters"]["protocol.retunes"] >= 1


def test_fig7_quick_with_workload_sweep(capsys):
    rc = main(
        [
            "fig7",
            "--quick",
            "--workload",
            "poisson:40",
            "--workload",
            "flash:peak=120,decay=1",
        ]
    )
    assert rc == 0
    assert "DHB" in capsys.readouterr().out


@pytest.mark.parametrize(
    "spec,hint",
    [
        ("bogus:1", "unknown workload kind"),
        ("diurnal:child,peak=bogus", "peak must be a number"),
        ("flash:peak=400", "missing required parameter"),
        ("mmpp:rates=20|200", "missing required parameter"),
        ("poisson:-5", "must be > 0"),
        ("trace:/nonexistent/file.txt", "trace"),
        ("", "empty"),
    ],
)
def test_malformed_workload_specs_exit_2_with_grammar(spec, hint, capsys):
    """Malformed --workload strings are configuration errors: exit code 2,
    the grammar in the message, and no traceback."""
    rc = main(["adaptive-study", "--quick", "--workload", spec])
    assert rc == 2
    err = capsys.readouterr().err
    assert "repro-cli: error:" in err
    assert "workload spec grammar" in err
    assert hint in err
    assert "Traceback" not in err


def test_malformed_workload_on_fig7_also_clean(capsys):
    rc = main(["fig7", "--quick", "--workload", "diurnal:goth,peak=10"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "workload spec grammar" in err and "Traceback" not in err


@pytest.mark.parametrize(
    "argv",
    [
        ["fig9", "--quick", "--workload", "20"],
        ["figures", "--workload", "20"],
        ["ablations", "--quick", "--workload", "20"],
    ],
)
def test_workload_flag_rejected_on_wrong_command(argv, capsys):
    with pytest.raises(SystemExit):
        main(argv)
    assert "--workload" in capsys.readouterr().err


def test_workload_flag_repeat_rejected_outside_sweeps(capsys):
    with pytest.raises(SystemExit):
        main(
            [
                "adaptive-study",
                "--quick",
                "--workload",
                "20",
                "--workload",
                "30",
            ]
        )
    err = capsys.readouterr().err
    assert "repeated only for the fig7/fig8 sweeps" in err
