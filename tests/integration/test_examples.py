"""Smoke tests: every example script runs to completion.

Examples are the documented entry points; breaking one silently would break
the README.  Each runs in a subprocess with the repo's interpreter.
"""

import pathlib
import subprocess
import sys


EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def run_example(name, *args, timeout=240):
    script = EXAMPLES_DIR / name
    result = subprocess.run(
        [sys.executable, str(script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_every_example_is_covered():
    names = {path.name for path in EXAMPLES}
    covered = {
        "quickstart.py",
        "protocol_tour.py",
        "diurnal_demand.py",
        "compressed_video.py",
        "capacity_planning.py",
        "premiere_night.py",
    }
    assert names == covered, f"update the smoke tests: {names ^ covered}"


def test_quickstart():
    out = run_example("quickstart.py", "50")
    assert "average bandwidth" in out
    assert "H(99)" in out


def test_protocol_tour():
    out = run_example("protocol_tour.py")
    assert "S2 S4 S2 S5 S2 S4" in out  # Figure 2 row
    assert "dhb" in out


def test_compressed_video():
    out = run_example("compressed_video.py", "50")
    assert "DHB-d" in out
    assert "expected ordering" in out


def test_capacity_planning():
    out = run_example("capacity_planning.py")
    assert "provisioned server bandwidth" in out
    assert "cap 2" in out


def test_diurnal_demand():
    out = run_example("diurnal_demand.py")
    assert "whole-run averages" in out


def test_premiere_night():
    out = run_example("premiere_night.py")
    assert "premiere surge" in out
    assert "verified on time" in out
