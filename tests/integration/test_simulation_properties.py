"""System-level property tests: driver + protocol, random workloads."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dhb import DHBProtocol
from repro.protocols.npb import NewPagodaBroadcasting
from repro.protocols.on_demand import OnDemandMapProtocol
from repro.protocols.fb import fb_map
from repro.protocols.ud import UniversalDistributionProtocol
from repro.sim.slotted import SlottedSimulation

arrival_lists = st.lists(st.floats(0.0, 999.0), min_size=0, max_size=120).map(sorted)


@settings(max_examples=60, deadline=None)
@given(times=arrival_lists, n_segments=st.integers(1, 25))
def test_dhb_simulation_invariants(times, n_segments):
    protocol = DHBProtocol(n_segments=n_segments, track_clients=True)
    sim = SlottedSimulation(protocol, slot_duration=10.0, horizon_slots=100)
    result = sim.run(times)
    # Waiting bound: nobody waits more than a slot.
    assert result.max_wait <= 10.0 + 1e-9
    # Bandwidth sanity: mean <= max, both non-negative.
    assert 0.0 <= result.mean_streams <= result.max_streams + 1e-9
    # Every admitted client is on time.
    for plan in protocol.clients:
        plan.verify(protocol.periods)
    # Total cost never exceeds the no-sharing cost.
    admitted = len(protocol.clients)
    assert protocol.schedule.total_instances <= admitted * n_segments


@settings(max_examples=40, deadline=None)
@given(times=arrival_lists)
def test_dhb_cost_monotone_in_request_volume(times):
    """Adding requests never reduces total scheduled instances."""
    base = DHBProtocol(n_segments=12)
    extended = DHBProtocol(n_segments=12)
    slots = sorted(int(t / 10.0) for t in times)
    for slot in slots:
        base.handle_request(slot)
        extended.handle_request(slot)
    for slot in slots:  # replay the trace again on top
        extended.handle_request(slot)
    assert extended.schedule.total_instances >= base.schedule.total_instances


@settings(max_examples=40, deadline=None)
@given(times=arrival_lists)
def test_ud_bounded_by_fb_allocation(times):
    """On-demand FB never transmits more than FB itself would."""
    ud = UniversalDistributionProtocol(n_segments=15)
    sim = SlottedSimulation(ud, slot_duration=10.0, horizon_slots=100)
    result = sim.run(times)
    assert result.max_streams <= ud.n_streams


@settings(max_examples=30, deadline=None)
@given(times=arrival_lists)
def test_on_demand_marks_subset_of_map(times):
    """Every transmitted occurrence exists in the underlying fixed map."""
    protocol = OnDemandMapProtocol(fb_map(4))
    slots = sorted(int(t / 10.0) for t in times)
    for slot in slots:
        protocol.handle_request(slot)
    for slot in range(0, 120):
        marked = protocol._marked.get(slot, set())
        available = set(protocol.map.segments_in_slot(slot))
        assert marked <= available


@settings(max_examples=30, deadline=None)
@given(
    times=arrival_lists,
    seed=st.integers(0, 5),
)
def test_fixed_protocol_invariant_under_workload(times, seed):
    npb = NewPagodaBroadcasting(n_streams=3)
    sim = SlottedSimulation(npb, slot_duration=10.0, horizon_slots=50)
    result = sim.run(times)
    assert result.mean_streams == 3.0
    assert result.max_streams == 3.0


@settings(max_examples=30, deadline=None)
@given(times=arrival_lists, warmup=st.integers(0, 50))
def test_warmup_never_increases_measured_mean_variability(times, warmup):
    """The run completes for any warmup below the horizon and reports a
    consistent number of measured slots."""
    protocol = DHBProtocol(n_segments=8)
    sim = SlottedSimulation(
        protocol, slot_duration=10.0, horizon_slots=60, warmup_slots=warmup
    )
    result = sim.run(times)
    assert result.slots_measured == 60 - warmup
