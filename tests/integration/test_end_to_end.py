"""End-to-end integration: full pipelines, multi-video scenarios, VBR flow."""

import numpy as np

from repro.core.bandwidth_limited import BandwidthLimitedDHB
from repro.core.dhb import DHBProtocol
from repro.core.variants import make_all_variants
from repro.experiments.config import SweepConfig
from repro.experiments.runner import arrivals_for_rate, measure_protocol
from repro.sim.rng import RandomStreams
from repro.sim.slotted import SlottedSimulation
from repro.units import HOUR, TWO_HOURS
from repro.video.matrix import matrix_like_video
from repro.workload.arrivals import NonHomogeneousPoisson
from repro.workload.diurnal import child_daytime_profile
from repro.workload.popularity import ZipfCatalog


def test_vbr_pipeline_end_to_end():
    """Matrix trace -> variants -> simulation -> ordered bandwidths."""
    video = matrix_like_video()
    variants = make_all_variants(video, 60.0)
    config = SweepConfig(duration=video.duration, n_segments=137).quick(
        rates_per_hour=(120.0,), base_hours=8.0, min_requests=50
    )
    arrivals = arrivals_for_rate(config, 120.0)
    means = []
    for name in ("DHB-a", "DHB-b", "DHB-c", "DHB-d"):
        variant = variants[name]
        point = measure_protocol(
            variant.build_protocol(),
            config,
            120.0,
            arrival_times=arrivals,
            stream_bandwidth=variant.stream_rate,
            slot_duration=variant.slot_duration,
        )
        means.append(point.mean_bandwidth)
    assert means == sorted(means, reverse=True)  # a > b > c > d


def test_vbr_clients_always_on_time():
    """Replay every client plan of a DHB-d run against its deadlines."""
    video = matrix_like_video()
    variant = make_all_variants(video, 60.0)["DHB-d"]
    protocol = variant.build_protocol(track_clients=True)
    rng = RandomStreams(3).get("arrivals")
    slots = 600
    times = np.sort(rng.uniform(0, slots * 60.0, size=250))
    sim = SlottedSimulation(protocol, 60.0, slots)
    sim.run(times)
    assert len(protocol.clients) == 250
    for plan in protocol.clients:
        plan.verify(variant.periods)


def test_diurnal_workload_dhb_tracks_demand():
    """DHB's bandwidth follows a time-varying demand profile."""
    profile = child_daytime_profile(peak_rate_per_hour=100.0)
    process = NonHomogeneousPoisson(profile.rate_at, profile.max_rate_per_hour)
    times = process.generate(24 * HOUR, RandomStreams(1).get("arrivals"))
    slot = TWO_HOURS / 99
    slots = int(24 * HOUR / slot)
    protocol = DHBProtocol(n_segments=99)
    sim = SlottedSimulation(protocol, slot, slots, keep_series=True)
    result = sim.run(times)
    series = np.array(result.series)
    per_slot = int(4 * HOUR / slot)
    night = series[:per_slot].mean()             # 00:00-04:00
    day = series[3 * per_slot : 4 * per_slot].mean()  # 12:00-16:00
    assert day > 4 * night
    assert day < 6.0  # still under NPB's allocation at the peak


def test_multi_video_catalog_runs_independently():
    """Per-title DHB instances under Zipf-split demand."""
    catalog = ZipfCatalog(n_videos=5, theta=1.0)
    slot = TWO_HOURS / 20
    slots = 800
    totals = []
    for rank in range(5):
        rate = catalog.rate_for(rank, 120.0)
        protocol = DHBProtocol(n_segments=20)
        sim = SlottedSimulation(protocol, slot, slots, warmup_slots=80)
        times = np.sort(
            RandomStreams(rank).get("arr").uniform(0, slots * slot,
                                                   size=max(3, int(rate)))
        )
        totals.append(sim.run(times).mean_streams)
    # More popular titles consume more bandwidth.
    assert totals[0] > totals[-1]


def test_bandwidth_limited_extension_full_run():
    """The receive-cap extension survives a realistic simulated day."""
    protocol = BandwidthLimitedDHB(n_segments=50, client_cap=2, track_clients=True)
    slot = TWO_HOURS / 50
    slots = 500
    rng = RandomStreams(9).get("arrivals")
    times = np.sort(rng.uniform(0, slots * slot, size=300))
    SlottedSimulation(protocol, slot, slots).run(times)
    for plan in protocol.clients:
        plan.verify(protocol.periods)
        assert plan.max_concurrent_receptions() <= 2


def test_reproducibility_across_runs():
    """Identical seeds give bit-identical sweep results."""
    config = SweepConfig().quick(rates_per_hour=(25.0,), base_hours=4.0,
                                 min_requests=20)
    first = measure_protocol(DHBProtocol(n_segments=99), config, 25.0)
    second = measure_protocol(DHBProtocol(n_segments=99), config, 25.0)
    assert first == second
