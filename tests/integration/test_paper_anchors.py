"""Integration tests: the paper's headline claims, as assertions.

These run real (moderate-horizon) simulations and check the *shape* facts
the paper reports.  The benchmarks rerun the same experiments at full
paper scale; these horizons are chosen so the orderings are already stable.
"""

import pytest

from repro.analysis.theory import dhb_saturation_bandwidth
from repro.core.dhb import DHBProtocol
from repro.protocols.npb import pagoda_streams_for_segments
from repro.protocols.stream_tapping import StreamTappingProtocol
from repro.protocols.ud import UniversalDistributionProtocol
from repro.sim.continuous import ContinuousSimulation
from repro.sim.rng import RandomStreams
from repro.sim.slotted import SlottedSimulation
from repro.workload.arrivals import PoissonArrivals

DURATION = 7200.0
N_SEGMENTS = 99
SLOT = DURATION / N_SEGMENTS
NPB_STREAMS = pagoda_streams_for_segments(N_SEGMENTS)  # = 6


def run_slotted(protocol, rate, hours=40.0, seed=11):
    slots = int(hours * 3600.0 / SLOT)
    sim = SlottedSimulation(protocol, SLOT, slots, warmup_slots=slots // 10)
    times = PoissonArrivals(rate).generate(
        slots * SLOT, RandomStreams(seed).get(f"arr@{rate}")
    )
    return sim.run(times)


def run_tapping(rate, hours=40.0, seed=11):
    horizon = hours * 3600.0
    protocol = StreamTappingProtocol(DURATION, expected_rate_per_hour=rate)
    sim = ContinuousSimulation(protocol, horizon, warmup=horizon / 10)
    times = PoissonArrivals(rate).generate(
        horizon, RandomStreams(seed).get(f"arr@{rate}")
    )
    return sim.run(times)


@pytest.fixture(scope="module")
def sweep():
    """DHB / UD / tapping measurements at low, mid and high rates."""
    results = {}
    for rate, hours in [(2.0, 300.0), (50.0, 60.0), (500.0, 30.0)]:
        results[rate] = {
            "dhb": run_slotted(DHBProtocol(n_segments=N_SEGMENTS), rate, hours),
            "ud": run_slotted(
                UniversalDistributionProtocol(n_segments=N_SEGMENTS), rate, hours
            ),
            "tapping": run_tapping(rate, hours),
        }
    return results


class TestFigure7Claims:
    def test_dhb_beats_all_rivals_above_two_per_hour(self, sweep):
        """"the new DHB protocol requires less average bandwidth than its
        four rivals do for all request arrival rates above two requests
        per hour"."""
        for rate in (2.0, 50.0, 500.0):
            dhb = sweep[rate]["dhb"].mean_streams
            assert dhb < sweep[rate]["ud"].mean_streams
            assert dhb < sweep[rate]["tapping"].mean_streams
            assert dhb < NPB_STREAMS

    def test_npb_constant_bandwidth(self):
        """NPB's requirements "do not vary with the request arrival rate"."""
        from repro.protocols.npb import NewPagodaBroadcasting

        for rate in (2.0, 500.0):
            result = run_slotted(
                NewPagodaBroadcasting(n_segments=N_SEGMENTS), rate, hours=10.0
            )
            assert result.mean_streams == NPB_STREAMS
            assert result.max_streams == NPB_STREAMS

    def test_stream_tapping_competitive_only_at_one_per_hour(self):
        dhb_1 = run_slotted(DHBProtocol(n_segments=N_SEGMENTS), 1.0, hours=600.0)
        tap_1 = run_tapping(1.0, hours=600.0)
        # Within ~25% of each other at 1/hour (the paper has tapping
        # slightly ahead; our tapping model lands slightly behind — both
        # protocols sit near one stream and far below everything else).
        assert tap_1.mean_streams == pytest.approx(dhb_1.mean_streams, rel=0.35)
        # ... and hopelessly behind by 50/hour.
        dhb_50 = run_slotted(DHBProtocol(n_segments=N_SEGMENTS), 50.0, hours=60.0)
        tap_50 = run_tapping(50.0, hours=60.0)
        assert tap_50.mean_streams > 1.5 * dhb_50.mean_streams

    def test_dhb_saturates_near_harmonic_number(self, sweep):
        """DHB's plateau sits between H(99) and NPB's stream count."""
        saturated = sweep[500.0]["dhb"].mean_streams
        assert dhb_saturation_bandwidth(N_SEGMENTS) <= saturated + 1e-9
        assert saturated < NPB_STREAMS

    def test_ud_saturates_at_fb_streams(self, sweep):
        """"Above 200 requests per hour ... UD reverts to a conventional
        FB protocol" — seven streams for 99 segments."""
        assert sweep[500.0]["ud"].mean_streams == pytest.approx(7.0, abs=0.05)


class TestFigure8Claims:
    def test_max_bandwidth_ordering(self, sweep):
        """NPB smallest max, DHB largest, UD between (loaded regime)."""
        dhb_max = sweep[500.0]["dhb"].max_streams
        ud_max = sweep[500.0]["ud"].max_streams
        assert NPB_STREAMS <= ud_max <= dhb_max

    def test_dhb_peak_within_two_streams_of_npb(self, sweep):
        """"the difference between these two protocols never exceeds twice
        the video consumption rate"."""
        for rate in (2.0, 50.0, 500.0):
            assert sweep[rate]["dhb"].max_streams - NPB_STREAMS <= 2.0


class TestWaitingTime:
    def test_slotted_wait_bounded_by_one_slot(self, sweep):
        for rate in (2.0, 500.0):
            for name in ("dhb", "ud"):
                result = sweep[rate][name]
                assert result.max_wait <= SLOT + 1e-9
                # Poisson arrivals average half a slot.
                assert result.mean_wait == pytest.approx(SLOT / 2, rel=0.15)

    def test_73_second_guarantee(self):
        """"no more than 73 seconds for a two-hour video" with 99 segments."""
        assert SLOT == pytest.approx(72.7, abs=0.1)

    def test_tapping_zero_delay(self, sweep):
        assert sweep[50.0]["tapping"].mean_wait == 0.0
