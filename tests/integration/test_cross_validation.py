"""Cross-validation: simulators vs closed-form models.

Where a protocol has an exact analytic cost, the simulation must match it;
where only bounds exist, the simulation must respect them.
"""

import numpy as np
import pytest

from repro.analysis.theory import (
    batching_cost_rate,
    dhb_saturation_bandwidth,
    evz_lower_bound,
    patching_cost_rate,
    staggered_catching_cost_rate,
)
from repro.core.dhb import DHBProtocol
from repro.protocols.batching import BatchingProtocol
from repro.protocols.catching import SelectiveCatchingProtocol
from repro.protocols.patching import PatchingProtocol
from repro.protocols.stream_tapping import StreamTappingProtocol
from repro.sim.continuous import ContinuousSimulation
from repro.sim.rng import RandomStreams
from repro.sim.slotted import SlottedSimulation
from repro.workload.arrivals import DeterministicArrivals, PoissonArrivals

DURATION = 7200.0


def poisson_times(rate, horizon, name):
    return PoissonArrivals(rate).generate(horizon, RandomStreams(5).get(name))


@pytest.mark.parametrize("rate", [5.0, 50.0, 300.0])
def test_patching_simulation_vs_formula(rate):
    horizon = max(400.0, 20000.0 / rate) * 3600.0
    protocol = PatchingProtocol(DURATION, expected_rate_per_hour=rate)
    sim = ContinuousSimulation(protocol, horizon, warmup=horizon * 0.02)
    result = sim.run(poisson_times(rate, horizon, f"patch{rate}"))
    theory = patching_cost_rate(rate / 3600.0, DURATION)
    assert result.mean_streams == pytest.approx(theory, rel=0.06)


@pytest.mark.parametrize("rate", [10.0, 100.0])
def test_tapping_beats_patching_and_respects_evz(rate):
    horizon = 300.0 * 3600.0
    protocol = StreamTappingProtocol(DURATION, expected_rate_per_hour=rate)
    sim = ContinuousSimulation(protocol, horizon, warmup=horizon * 0.05)
    result = sim.run(poisson_times(rate, horizon, f"tap{rate}"))
    lam = rate / 3600.0
    assert result.mean_streams <= patching_cost_rate(lam, DURATION) * 1.02
    # The Eager-Vernon-Zahorjan bound is a hard floor for zero-delay service.
    assert result.mean_streams >= evz_lower_bound(lam, DURATION) * 0.98


def test_batching_simulation_vs_formula():
    rate, window = 40.0, 600.0
    horizon = 500.0 * 3600.0
    protocol = BatchingProtocol(DURATION, window)
    sim = ContinuousSimulation(protocol, horizon, warmup=horizon * 0.02)
    result = sim.run(poisson_times(rate, horizon, "batch"))
    theory = batching_cost_rate(rate / 3600.0, DURATION, window)
    assert result.mean_streams == pytest.approx(theory, rel=0.06)


def test_catching_simulation_vs_formula():
    rate, channels = 80.0, 5
    horizon = 200.0 * 3600.0
    protocol = SelectiveCatchingProtocol(DURATION, n_channels=channels)
    sim = ContinuousSimulation(protocol, horizon, warmup=horizon * 0.05)
    result = sim.run(poisson_times(rate, horizon, "catch"))
    theory = staggered_catching_cost_rate(rate / 3600.0, DURATION, channels)
    assert result.mean_streams == pytest.approx(theory, rel=0.06)


def test_dhb_saturation_equals_harmonic_under_per_slot_arrivals():
    """With a request in every slot and the always-latest placements
    suppressed by sharing, each segment settles at its minimum frequency;
    the measured mean approaches H(n) from above."""
    n = 40
    protocol = DHBProtocol(n_segments=n)
    slots = 4000
    sim = SlottedSimulation(protocol, 1.0, slots, warmup_slots=slots // 5)
    times = DeterministicArrivals(interval=1.0, offset=0.5).generate(
        float(slots), np.random.default_rng(0)
    )
    result = sim.run(times)
    target = dhb_saturation_bandwidth(n)
    assert target - 1e-6 <= result.mean_streams <= target * 1.10


def test_dhb_never_below_evz_bound():
    """No protocol with wait d can beat the EVZ lower bound."""
    n = 99
    slot = DURATION / n
    for rate in [5.0, 100.0]:
        slots = int(60 * 3600.0 / slot)
        protocol = DHBProtocol(n_segments=n)
        sim = SlottedSimulation(protocol, slot, slots, warmup_slots=slots // 10)
        result = sim.run(poisson_times(rate, slots * slot, f"dhb{rate}"))
        bound = evz_lower_bound(rate / 3600.0, DURATION, wait=slot)
        assert result.mean_streams >= bound * 0.97
