"""Tests for repro.experiments.runner."""

import numpy as np
import pytest

from repro.core.dhb import DHBProtocol
from repro.errors import ConfigurationError
from repro.experiments.config import SweepConfig
from repro.experiments.runner import (
    arrivals_for_rate,
    measure_protocol,
    sweep_factory,
    sweep_protocols,
)
from repro.protocols.npb import NewPagodaBroadcasting
from repro.protocols.patching import PatchingProtocol


CONFIG = SweepConfig().quick(rates_per_hour=(20.0,), base_hours=4.0, min_requests=20)


def test_arrivals_shared_across_calls():
    a = arrivals_for_rate(CONFIG, 20.0)
    b = arrivals_for_rate(CONFIG, 20.0)
    assert np.allclose(a, b)


def test_arrivals_differ_across_rates_and_seeds():
    a = arrivals_for_rate(CONFIG, 20.0)
    b = arrivals_for_rate(CONFIG.replace(seed=1), 20.0)
    assert len(a) != len(b) or not np.allclose(a, b)


def test_measure_slotted_protocol():
    point = measure_protocol(DHBProtocol(n_segments=CONFIG.n_segments), CONFIG, 20.0)
    assert point.rate_per_hour == 20.0
    assert 0 < point.mean_bandwidth <= point.max_bandwidth
    assert point.n_requests > 0
    assert 0 <= point.mean_wait <= CONFIG.slot_duration


def test_measure_reactive_protocol():
    protocol = PatchingProtocol(
        duration=CONFIG.duration, expected_rate_per_hour=20.0
    )
    point = measure_protocol(protocol, CONFIG, 20.0)
    assert point.mean_bandwidth > 0
    assert point.mean_wait == 0.0


def test_stream_bandwidth_scaling():
    base = measure_protocol(
        NewPagodaBroadcasting(n_segments=CONFIG.n_segments), CONFIG, 20.0
    )
    scaled = measure_protocol(
        NewPagodaBroadcasting(n_segments=CONFIG.n_segments),
        CONFIG,
        20.0,
        stream_bandwidth=100.0,
    )
    assert scaled.mean_bandwidth == pytest.approx(base.mean_bandwidth * 100.0)


def test_byte_weighted_accounting():
    weights = [100.0] * CONFIG.n_segments
    protocol = DHBProtocol(n_segments=CONFIG.n_segments, segment_weights=weights)
    point = measure_protocol(protocol, CONFIG, 20.0, byte_weighted=True)
    unweighted = measure_protocol(
        DHBProtocol(n_segments=CONFIG.n_segments), CONFIG, 20.0
    )
    # Uniform 100-byte weights divided by the slot length.
    expected = unweighted.mean_bandwidth * 100.0 / CONFIG.slot_duration
    assert point.mean_bandwidth == pytest.approx(expected, rel=1e-6)


def test_byte_weighted_rejected_for_reactive():
    protocol = PatchingProtocol(duration=CONFIG.duration, expected_rate_per_hour=20.0)
    with pytest.raises(ConfigurationError):
        measure_protocol(protocol, CONFIG, 20.0, byte_weighted=True)


def test_slot_duration_override():
    point = measure_protocol(
        DHBProtocol(n_segments=10), CONFIG, 20.0, slot_duration=60.0
    )
    assert point.mean_wait <= 60.0


def test_sweep_factory_runs_all_rates():
    config = CONFIG.replace(rates_per_hour=(5.0, 50.0))
    series = sweep_factory(
        "dhb", lambda rate: DHBProtocol(n_segments=config.n_segments), config
    )
    assert series.rates == [5.0, 50.0]
    assert series.means[0] < series.means[1]


def test_sweep_protocols_common_random_numbers():
    config = CONFIG.replace(rates_per_hour=(30.0,))
    all_series = sweep_protocols(["dhb", "npb"], config, labels=["DHB", "NPB"])
    assert [s.protocol for s in all_series] == ["DHB", "NPB"]
    assert all_series[0].points[0].n_requests == all_series[1].points[0].n_requests


def test_sweep_protocols_label_mismatch():
    with pytest.raises(ConfigurationError):
        sweep_protocols(["dhb"], CONFIG, labels=["a", "b"])


def test_invalid_rate():
    with pytest.raises(ConfigurationError):
        measure_protocol(DHBProtocol(n_segments=5), CONFIG, 0.0)


class TestReplication:
    def test_interval_covers_replications(self):
        from repro.experiments.runner import replicate_measurement

        point = replicate_measurement(
            lambda rate: DHBProtocol(n_segments=CONFIG.n_segments),
            CONFIG,
            20.0,
            n_replications=3,
        )
        assert len(point.replications) == 3
        assert min(point.replications) <= point.mean <= max(point.replications)
        low, high = point.interval
        assert low <= point.mean <= high

    def test_replications_use_distinct_seeds(self):
        from repro.experiments.runner import replicate_measurement

        point = replicate_measurement(
            lambda rate: DHBProtocol(n_segments=CONFIG.n_segments),
            CONFIG,
            20.0,
            n_replications=3,
        )
        assert len(set(point.replications)) > 1
        assert point.half_width > 0.0

    def test_deterministic(self):
        from repro.experiments.runner import replicate_measurement

        factory = lambda rate: DHBProtocol(n_segments=CONFIG.n_segments)
        a = replicate_measurement(factory, CONFIG, 20.0, n_replications=2)
        b = replicate_measurement(factory, CONFIG, 20.0, n_replications=2)
        assert a == b

    def test_too_few_replications(self):
        from repro.experiments.runner import replicate_measurement

        with pytest.raises(ConfigurationError):
            replicate_measurement(
                lambda rate: DHBProtocol(n_segments=9), CONFIG, 20.0,
                n_replications=1,
            )
