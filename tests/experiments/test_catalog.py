"""Tests for repro.experiments.catalog."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.catalog import run_catalog
from repro.experiments.config import SweepConfig

QUICK = SweepConfig().quick(base_hours=3.0, min_requests=15)


@pytest.fixture(scope="module")
def result():
    return run_catalog(
        n_videos=4, total_rate_per_hour=200.0, theta=1.0, config=QUICK
    )


def test_shapes(result):
    assert result.n_videos == 4
    assert len(result.per_title_rates) == 4
    assert len(result.dhb_streams) == 4
    assert sum(result.per_title_rates) == pytest.approx(200.0, rel=0.01)


def test_popularity_ordering(result):
    assert result.per_title_rates == sorted(result.per_title_rates, reverse=True)
    # More demand, more bandwidth (per dynamic protocol).
    assert result.dhb_streams[0] > result.dhb_streams[-1]


def test_best_per_title_never_worse_than_uniform_policies(result):
    assert result.total_best <= result.total_dhb + 1e-9
    assert result.total_best <= result.total_tapping + 1e-9


def test_npb_total_ignores_demand(result):
    assert result.total_npb == result.npb_streams * 4


def test_dhb_beats_npb_catalogwide(result):
    """With Zipf demand most titles idle most of the time — exactly where a
    fixed schedule wastes its allocation."""
    assert result.total_dhb < result.total_npb


def test_render(result):
    text = result.render()
    assert "#1" in text and "totals:" in text


def test_validation():
    with pytest.raises(ConfigurationError):
        run_catalog(n_videos=0)
    with pytest.raises(ConfigurationError):
        run_catalog(total_rate_per_hour=0.0)
