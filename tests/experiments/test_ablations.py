"""Tests for repro.experiments.ablations."""

import pytest

from repro.experiments.ablations import (
    heuristic_ablation,
    peak_demonstration,
    sharing_ablation,
    slack_dial_ablation,
)
from repro.experiments.config import SweepConfig

QUICK = SweepConfig().quick(rates_per_hour=(100.0,), base_hours=4.0, min_requests=30)


def test_heuristic_ablation_runs_all_arms():
    series = heuristic_ablation(QUICK)
    labels = [s.protocol for s in series]
    assert "min-load/latest (paper)" in labels
    assert "always-latest (naive)" in labels
    assert len(series) == 4
    assert all(len(s.points) == 1 for s in series)


def test_sharing_ablation_shows_sharing_savings():
    series = sharing_ablation(QUICK)
    by_name = {s.protocol: s for s in series}
    with_sharing = by_name["DHB (sharing)"].means[0]
    without = by_name["DHB (no sharing)"].means[0]
    assert with_sharing < without


def test_slack_dial_spans_the_tradeoff():
    series = slack_dial_ablation(QUICK, slacks=(0, 1_000_000))
    by_name = {s.protocol: s for s in series}
    assert set(by_name) == {"slack=0", "slack=inf"}
    # Infinite slack (always-latest) never pays more on average ...
    assert by_name["slack=inf"].means[0] <= by_name["slack=0"].means[0] * 1.05
    # ... but its peak is visibly taller under load.
    assert by_name["slack=inf"].maxima[0] > by_name["slack=0"].maxima[0]


def test_peak_demonstration_naive_explodes():
    """The paper's "slot 120!" bandwidth-peak argument, in miniature."""
    results = peak_demonstration(n_segments=40, n_slots=1500)
    heuristic = results["heuristic"]
    naive = results["always-latest"]
    # Averages are comparable (both at the harmonic plateau)...
    assert heuristic["mean_streams"] == pytest.approx(
        naive["mean_streams"], rel=0.25
    )
    # ... but the naive rule's peak is far above the heuristic's.
    assert naive["max_streams"] >= heuristic["max_streams"] + 3
    # And the heuristic's peak stays within a couple of streams of its mean.
    assert heuristic["max_streams"] <= heuristic["mean_streams"] + 3
