"""Observability through the sweep layer: merge semantics, manifests, traces.

The load-bearing invariant: an observed sweep reports the same metrics and
the same trace-record stream whether it ran serially or fanned out across
worker processes (timers excepted — wall clock is not deterministic).
"""

import pytest

from repro.experiments.config import SweepConfig
from repro.experiments.fig9 import run_fig9
from repro.experiments.parallel import ParallelSweepExecutor, SweepPoint
from repro.experiments.runner import observed_sweep
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import MemoryTraceSink, Observation

QUICK = SweepConfig().quick(
    rates_per_hour=(10.0, 100.0), base_hours=2.0, min_requests=10
)

DETERMINISTIC_SECTIONS = ("counters", "gauges", "histograms")


def _observed_series(n_jobs, trace=None):
    registry = MetricsRegistry()
    observation = Observation(metrics=registry, trace=trace)
    executor = ParallelSweepExecutor(n_jobs=n_jobs)
    series = executor.sweep(["dhb", "npb"], QUICK, observation=observation)
    return series, registry


class TestRegistryMergeAcrossWorkers:
    def test_parallel_metrics_equal_serial(self):
        serial_series, serial_registry = _observed_series(n_jobs=1)
        parallel_series, parallel_registry = _observed_series(n_jobs=2)
        serial, parallel = serial_registry.to_dict(), parallel_registry.to_dict()
        for section in DETERMINISTIC_SECTIONS:
            assert serial[section] == parallel[section], section
        # Timers keep per-process wall times; counts still line up.
        assert {
            name: payload["count"] for name, payload in serial["timers"].items()
        } == {name: payload["count"] for name, payload in parallel["timers"].items()}

    def test_parallel_series_equal_serial(self):
        serial_series, _ = _observed_series(n_jobs=1)
        parallel_series, _ = _observed_series(n_jobs=2)
        for a, b in zip(serial_series, parallel_series):
            assert a.protocol == b.protocol
            assert a.points == b.points

    def test_trace_records_arrive_in_task_order(self):
        serial_sink, parallel_sink = MemoryTraceSink(), MemoryTraceSink()
        _observed_series(n_jobs=1, trace=serial_sink)
        _observed_series(n_jobs=2, trace=parallel_sink)
        assert serial_sink.records == parallel_sink.records
        # Task order: all of dhb's rates, then all of npb's.
        labels = [record["protocol"] for record in parallel_sink.records]
        assert labels == sorted(labels, key=["dhb", "npb"].index)

    def test_observation_does_not_change_measurements(self):
        executor = ParallelSweepExecutor(n_jobs=1)
        plain = executor.sweep(["dhb"], QUICK)
        observed, _ = _observed_series(n_jobs=1)
        assert plain[0].points == observed[0].points

    def test_fig9_shared_registry_does_not_change_measurements(self):
        # Unlike the executor path (fresh registry per grid cell), fig9
        # threads ONE registry through every (protocol, rate) measurement;
        # a recorder that aliased the cumulative sim.slot_load histogram
        # would corrupt every point after the first.
        config = SweepConfig().quick(
            rates_per_hour=(5.0, 50.0), base_hours=2.0, min_requests=10
        )
        plain = run_fig9(config)
        observed = run_fig9(
            config, observation=Observation(metrics=MetricsRegistry())
        )
        for a, b in zip(plain, observed):
            assert a.protocol == b.protocol
            assert a.points == b.points

    def test_measure_points_merges_per_cell_registries(self):
        registry = MetricsRegistry()
        observation = Observation(metrics=registry)
        points = [
            SweepPoint("npb", "npb", rate) for rate in QUICK.rates_per_hour
        ]
        ParallelSweepExecutor(n_jobs=1).measure_points(
            points, QUICK, observation=observation
        )
        assert registry.counter("measure.points").value == len(points)
        assert registry.counter("sim.slots").value > 0


class TestObservedSweep:
    def test_manifest_attached_and_complete(self):
        run = observed_sweep(["npb"], QUICK, experiment="fig7")
        assert run.manifest.experiment == "fig7"
        assert run.manifest.protocols == ["npb"]
        assert run.manifest.seed == QUICK.seed
        assert run.manifest.params["n_segments"] == QUICK.n_segments
        assert run.manifest.duration_seconds > 0.0
        assert run.manifest.python_version

    def test_metrics_document_schema(self):
        run = observed_sweep(["npb"], QUICK)
        document = run.metrics_document()
        assert document["schema"] == 1
        assert document["manifest"]["experiment"] == "sweep"
        assert document["metrics"]["counters"]["measure.points"] == len(
            QUICK.rates_per_hour
        )

    def test_sweep_counts_every_grid_cell(self):
        run = observed_sweep(["dhb", "npb"], QUICK, n_jobs=2)
        expected_points = 2 * len(QUICK.rates_per_hour)
        assert run.metrics.counter("measure.points").value == expected_points
        histogram = run.metrics.histogram("sim.slot_load").stats
        assert histogram.count > 0
        assert run.metrics.timer("sim.run_seconds").stats.count == expected_points

    def test_slot_load_histogram_consistent_with_series(self):
        run = observed_sweep(["npb"], QUICK)
        points = run.series[0].points
        stats = run.metrics.histogram("sim.slot_load").stats
        # The pooled histogram covers exactly the measured slots, so its
        # extremes and mean must bracket the per-point summaries.
        assert stats.maximum == max(point.max_bandwidth for point in points)
        assert (
            min(p.mean_bandwidth for p in points)
            <= stats.mean
            <= max(p.mean_bandwidth for p in points)
        ) or stats.mean == pytest.approx(points[0].mean_bandwidth)
