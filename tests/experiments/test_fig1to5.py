"""Tests for repro.experiments.fig1to5 — the exact schedule figures."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.fig1to5 import (
    render_all_figures,
    render_dhb_schedule,
    render_figure,
)

FIGURE_1 = """\
Stream 1  S1 S1 S1 S1
Stream 2  S2 S3 S2 S3
Stream 3  S4 S5 S6 S7"""

FIGURE_2 = """\
Stream 1  S1 S1 S1 S1 S1 S1
Stream 2  S2 S4 S2 S5 S2 S4
Stream 3  S3 S6 S8 S3 S7 S9"""

FIGURE_3 = """\
Stream 1  S1 S1 S1 S1
Stream 2  S2 S3 S2 S3
Stream 3  S4 S5 S4 S5"""


def test_figure_1_exact():
    assert render_figure(1).splitlines()[1:] == FIGURE_1.splitlines()


def test_figure_2_exact():
    assert render_figure(2).splitlines()[1:] == FIGURE_2.splitlines()


def test_figure_3_exact():
    assert render_figure(3).splitlines()[1:] == FIGURE_3.splitlines()


def test_figure_4_schedule():
    """One request during slot 1: S_j in slot j+1 on a single stream."""
    text = render_dhb_schedule([1])
    lines = text.splitlines()
    assert len(lines) == 2  # header + one stream
    assert lines[1].split() == ["1st", "Stream", "S1", "S2", "S3", "S4", "S5", "S6"]


def test_figure_5_schedule():
    """Second request during slot 3: S1@4 and S2@5 on a second stream."""
    text = render_dhb_schedule([1, 3])
    lines = text.splitlines()
    assert len(lines) == 3
    assert lines[2].split() == ["2nd", "Stream", "S1", "S2"]
    # The second stream's entries sit under slots 4 and 5.
    header = lines[0]
    assert lines[2].index("S1") == header.index("4")
    assert lines[2].index("S2") == header.index("5")


def test_figure_titles_match_paper():
    assert "fast broadcasting" in render_figure(1)
    assert "NPB protocol" in render_figure(2)
    assert "skyscraper broadcasting" in render_figure(3)
    assert "idle system" in render_figure(4)
    assert "two overlapping requests" in render_figure(5)


def test_render_all_contains_every_figure():
    text = render_all_figures()
    for figure in range(1, 6):
        assert f"Figure {figure}." in text


def test_invalid_figure_number():
    with pytest.raises(ConfigurationError):
        render_figure(6)
    with pytest.raises(ConfigurationError):
        render_dhb_schedule([])
