"""Tests for repro.experiments.parallel (and the runner's trace cache)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import SweepConfig
from repro.experiments.parallel import (
    N_JOBS_ENV,
    ParallelSweepExecutor,
    SweepPoint,
    resolve_n_jobs,
)
from repro.experiments.runner import (
    arrivals_for_rate,
    clear_trace_cache,
    sweep_protocols,
)


CONFIG = SweepConfig().quick(
    rates_per_hour=(5.0, 30.0), base_hours=2.0, min_requests=10
)


class TestResolveNJobs:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "7")
        assert resolve_n_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "4")
        assert resolve_n_jobs(None) == 4

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(N_JOBS_ENV, raising=False)
        assert resolve_n_jobs(None) == 1

    def test_negative_means_all_cores(self):
        assert resolve_n_jobs(-1) >= 1

    def test_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_n_jobs(0)

    def test_bad_env_value_warns_and_falls_back(self, monkeypatch):
        # The environment is advisory: a typo'd export degrades to serial
        # with a warning instead of aborting the run (see runtime.config).
        monkeypatch.setenv(N_JOBS_ENV, "many")
        with pytest.warns(RuntimeWarning, match="not an integer"):
            assert resolve_n_jobs(None) == 1


class TestParallelEqualsSerial:
    def test_sweep_is_bit_for_bit_identical(self):
        names = ["dhb", "ud"]
        serial = sweep_protocols(names, CONFIG, n_jobs=1)
        parallel = sweep_protocols(names, CONFIG, n_jobs=2)
        assert len(serial) == len(parallel) == 2
        for a, b in zip(serial, parallel):
            assert a.protocol == b.protocol
            # BandwidthPoint is a dataclass: == compares every float exactly.
            assert a.points == b.points

    def test_measure_points_preserves_order(self):
        points = [
            SweepPoint("npb", "npb", rate) for rate in CONFIG.rates_per_hour
        ]
        serial = ParallelSweepExecutor(n_jobs=1).measure_points(points, CONFIG)
        pooled = ParallelSweepExecutor(n_jobs=2).measure_points(points, CONFIG)
        assert serial == pooled
        assert [p.rate_per_hour for p in serial] == list(CONFIG.rates_per_hour)

    def test_sweep_labels_must_parallel_names(self):
        with pytest.raises(ConfigurationError):
            ParallelSweepExecutor(n_jobs=1).sweep(
                ["dhb", "ud"], CONFIG, labels=["only-one"]
            )


class TestTraceCache:
    def test_cache_returns_same_object(self):
        clear_trace_cache()
        a = arrivals_for_rate(CONFIG, 30.0)
        b = arrivals_for_rate(CONFIG, 30.0)
        assert a is b

    def test_cached_trace_is_read_only(self):
        clear_trace_cache()
        trace = arrivals_for_rate(CONFIG, 30.0)
        assert not trace.flags.writeable
        with pytest.raises(ValueError):
            trace[0] = 0.0

    def test_clear_forces_regeneration(self):
        a = arrivals_for_rate(CONFIG, 30.0)
        clear_trace_cache()
        b = arrivals_for_rate(CONFIG, 30.0)
        assert a is not b
        assert np.array_equal(a, b)  # same seed, same trace values

    def test_distinct_keys_distinct_traces(self):
        clear_trace_cache()
        a = arrivals_for_rate(CONFIG, 5.0)
        b = arrivals_for_rate(CONFIG, 30.0)
        c = arrivals_for_rate(CONFIG.replace(seed=99), 5.0)
        assert a is not b
        assert a is not c
