"""Tests for repro.experiments.adaptive: the adaptive-vs-static day study."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.adaptive import (
    AdaptiveStudyConfig,
    default_day_workload,
    run_adaptive_arm,
    run_adaptive_study,
)
from repro.runtime import Engine
from repro.workload.spec import WorkloadSpec


def quick_config(**overrides):
    config = AdaptiveStudyConfig().quick()
    if overrides:
        import dataclasses

        config = dataclasses.replace(config, **overrides)
    return config


def test_default_day_is_diurnal_plus_ring():
    day = default_day_workload()
    assert day.kind == "superpose"
    kinds = {part.kind for part in day._get("parts")}
    assert kinds == {"diurnal", "ring"}


def test_quick_study_adaptive_holds_the_peak():
    """The acceptance claim: adaptive peak strictly below static under
    the same deadline guarantee, on the identical arrival trace."""
    result = run_adaptive_study(config=quick_config())
    assert result.static.n_requests == result.adaptive.n_requests
    assert result.adaptive.peak_streams < result.static.peak_streams
    assert result.adaptive.retunes >= 1
    assert (
        result.adaptive.worst_startup_wait_seconds
        <= result.config.deadline_guarantee_seconds
    )
    assert result.verified
    assert result.peak_reduction > 0


def test_render_contains_hourly_table_and_verdict():
    result = run_adaptive_study(config=quick_config())
    text = result.render()
    assert "static-peak" in text and "adaptive-peak" in text
    assert "verified: yes" in text
    assert "retunes" in text


def test_study_is_backend_invariant():
    serial = run_adaptive_study(config=quick_config())
    pooled = run_adaptive_study(config=quick_config(), engine=Engine(n_jobs=2))
    assert serial.static == pooled.static
    assert serial.adaptive == pooled.adaptive


def test_arm_handler_rejects_unknown_arm():
    with pytest.raises(ConfigurationError):
        run_adaptive_arm("bogus", quick_config())


def test_config_workload_coercion_and_validation():
    config = quick_config(workload="flash:peak=120,decay=1")
    assert isinstance(config.workload, WorkloadSpec)
    with pytest.raises(ConfigurationError):
        AdaptiveStudyConfig(n_segments=0)
    with pytest.raises(ConfigurationError):
        AdaptiveStudyConfig(warmup_fraction=1.0)


def test_engine_spec_path_matches_direct_call():
    """The "adaptive-arm" task kind must return exactly what the direct
    function does — the property checkpoint replay relies on."""
    from repro.runtime import RunSpec

    config = quick_config()
    direct = run_adaptive_arm("adaptive", config)
    with Engine(n_jobs=1) as engine:
        (via_engine,) = engine.run_values(
            [RunSpec("adaptive-arm", ("adaptive", config))]
        )
    assert via_engine == direct
