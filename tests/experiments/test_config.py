"""Tests for repro.experiments.config."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import PAPER_RATES, SweepConfig


def test_defaults_match_paper():
    config = SweepConfig()
    assert config.duration == 7200.0
    assert config.n_segments == 99
    assert config.rates_per_hour == PAPER_RATES
    assert config.rates_per_hour[0] == 1
    assert config.rates_per_hour[-1] == 1000


def test_slot_duration():
    assert SweepConfig().slot_duration == pytest.approx(7200.0 / 99)


def test_horizon_stretches_at_low_rates():
    config = SweepConfig(base_hours=40.0, min_requests=400)
    assert config.horizon_hours(1000.0) == 40.0
    assert config.horizon_hours(1.0) == 400.0


def test_quick_is_smaller():
    config = SweepConfig()
    quick = config.quick()
    assert quick.base_hours < config.base_hours
    assert len(quick.rates_per_hour) < len(config.rates_per_hour)
    assert quick.duration == config.duration


def test_quick_accepts_overrides():
    quick = SweepConfig().quick(rates_per_hour=(7.0,), seed=9)
    assert quick.rates_per_hour == (7.0,)
    assert quick.seed == 9


def test_replace_validates():
    with pytest.raises(ConfigurationError):
        SweepConfig().replace(n_segments=0)


@pytest.mark.parametrize(
    "overrides",
    [
        dict(duration=0.0),
        dict(n_segments=0),
        dict(rates_per_hour=()),
        dict(rates_per_hour=(0.0,)),
        dict(base_hours=0.0),
        dict(min_requests=0),
        dict(warmup_fraction=1.0),
        dict(warmup_fraction=-0.1),
    ],
)
def test_validation(overrides):
    with pytest.raises(ConfigurationError):
        SweepConfig(**overrides)


def test_horizon_invalid_rate():
    with pytest.raises(ConfigurationError):
        SweepConfig().horizon_hours(0.0)
