"""Quick-mode runs of the Figure 7/8/9 harnesses.

These check the harness plumbing and the coarsest shape facts on short
horizons; the full shape assertions live in tests/integration and the
benchmarks.
"""

import pytest

from repro.analysis.metrics import series_by_name
from repro.experiments.config import SweepConfig
from repro.experiments.fig7 import report_fig7, run_fig7
from repro.experiments.fig8 import report_fig8, run_fig8
from repro.experiments.fig9 import fig9_config, report_fig9, run_fig9

QUICK = SweepConfig().quick(rates_per_hour=(5.0, 200.0), base_hours=5.0, min_requests=30)


@pytest.fixture(scope="module")
def fig7_series():
    return run_fig7(QUICK)


@pytest.fixture(scope="module")
def fig8_series():
    return run_fig8(QUICK)


@pytest.fixture(scope="module")
def fig9_series():
    return run_fig9(QUICK)


class TestFig7:
    def test_four_series_in_legend_order(self, fig7_series):
        assert [s.protocol for s in fig7_series] == [
            "Stream Tapping/Patching",
            "UD Protocol",
            "DHB Protocol",
            "New Pagoda Broadcasting",
        ]

    def test_npb_is_flat_at_six(self, fig7_series):
        npb = series_by_name(fig7_series)["New Pagoda Broadcasting"]
        assert npb.means == pytest.approx([6.0, 6.0])

    def test_dhb_beats_everyone_at_high_rate(self, fig7_series):
        indexed = series_by_name(fig7_series)
        dhb_high = indexed["DHB Protocol"].means[-1]
        for name in ("Stream Tapping/Patching", "UD Protocol",
                     "New Pagoda Broadcasting"):
            assert dhb_high < indexed[name].means[-1]

    def test_report_renders(self, fig7_series):
        text = report_fig7(fig7_series)
        assert "Figure 7" in text
        assert "DHB Protocol" in text


class TestFig8:
    def test_three_series(self, fig8_series):
        assert [s.protocol for s in fig8_series] == [
            "UD Protocol",
            "DHB Protocol",
            "New Pagoda Broadcasting",
        ]

    def test_npb_smallest_max_at_high_rate(self, fig8_series):
        # At low rates a dynamic protocol's peak can momentarily dip below
        # NPB's constant allocation; the paper's ordering claim is about the
        # loaded regime, asserted here at the top of the quick sweep.
        indexed = series_by_name(fig8_series)
        npb_high = indexed["New Pagoda Broadcasting"].maxima[-1]
        for name in ("UD Protocol", "DHB Protocol"):
            assert npb_high <= indexed[name].maxima[-1]

    def test_report_renders(self, fig8_series):
        assert "Figure 8" in report_fig8(fig8_series)


class TestFig9:
    def test_five_series(self, fig9_series):
        assert [s.protocol for s in fig9_series] == [
            "UD", "DHB-a", "DHB-b", "DHB-c", "DHB-d",
        ]

    def test_ordering_at_high_rate(self, fig9_series):
        highs = [s.means[-1] for s in fig9_series]
        assert highs == sorted(highs, reverse=True)

    def test_report_renders(self, fig9_series):
        text = report_fig9(fig9_series)
        assert "Figure 9" in text and "MB/s" in text


def test_fig9_config_derivation():
    config, video = fig9_config(QUICK)
    assert config.n_segments == 137
    assert config.duration == video.duration == 8170.0
