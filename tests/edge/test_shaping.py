"""Tests for repro.edge.shaping — classification and uplink metering."""

import pytest

from repro.edge.shaping import (
    DEFAULT_CLASSES,
    PolicyShaper,
    TrafficClass,
    parse_classes,
    validate_classes,
)
from repro.errors import ConfigurationError


def test_classification_follows_weights():
    shaper = PolicyShaper(DEFAULT_CLASSES, uplink_streams=10.0)
    names = [shaper.classify().name for _ in range(1000)]
    assert names.count("premium") == 700
    assert names.count("best-effort") == 300


def test_classification_is_deterministic():
    first = PolicyShaper(DEFAULT_CLASSES, uplink_streams=10.0)
    second = PolicyShaper(DEFAULT_CLASSES, uplink_streams=10.0)
    assert [first.classify().name for _ in range(50)] == [
        second.classify().name for _ in range(50)
    ]


def test_classification_interleaves():
    # Weighted round-robin spreads the minority class through the stream
    # rather than batching it at the end.
    shaper = PolicyShaper(DEFAULT_CLASSES, uplink_streams=10.0)
    first_ten = [shaper.classify().name for _ in range(10)]
    assert first_ten.count("best-effort") == 3
    assert first_ten[0] == "premium"


def test_bucket_covers_burst_then_defers():
    cls = (TrafficClass("only", weight=1, uplink_share=1.0),)
    shaper = PolicyShaper(cls, uplink_streams=5.0, burst_slots=2.0)
    only = shaper.classes[0]
    # Capacity is 10 tokens: two 5-segment prefixes go out immediately.
    assert shaper.reserve(only, 5) == 0
    assert shaper.reserve(only, 5) == 0
    # The bucket is empty; the next 5-cost request waits one refill.
    assert shaper.reserve(only, 5) == 1
    assert shaper.deferrals["only"] == 1
    assert shaper.deferral_slots["only"] == 1


def test_deferral_grows_with_debt():
    cls = (TrafficClass("only", weight=1, uplink_share=1.0),)
    shaper = PolicyShaper(cls, uplink_streams=2.0, burst_slots=1.0)
    only = shaper.classes[0]
    assert shaper.reserve(only, 2) == 0
    assert shaper.reserve(only, 2) == 1
    assert shaper.reserve(only, 2) == 2  # debt accumulates: queueing delay


def test_refill_is_capped_at_burst():
    cls = (TrafficClass("only", weight=1, uplink_share=1.0),)
    shaper = PolicyShaper(cls, uplink_streams=4.0, burst_slots=1.0)
    only = shaper.classes[0]
    for _ in range(10):
        shaper.begin_slot()
    # Idle slots must not bank more than one burst allowance.
    assert shaper.reserve(only, 4) == 0
    assert shaper.reserve(only, 4) == 1


def test_zero_share_class_bypasses():
    classes = (
        TrafficClass("gold", weight=1, uplink_share=1.0),
        TrafficClass("free", weight=1, uplink_share=0.0),
    )
    shaper = PolicyShaper(classes, uplink_streams=8.0)
    free = shaper.classes[1]
    assert shaper.reserve(free, 3) is None
    assert shaper.bypassed["free"] == 1


def test_parse_classes_round_trip():
    classes = parse_classes("gold:3:0.8, bronze:1:0.2")
    assert [cls.name for cls in classes] == ["gold", "bronze"]
    assert classes[0].weight == 3
    assert classes[1].uplink_share == pytest.approx(0.2)


def test_parse_classes_rejects_bad_specs():
    with pytest.raises(ConfigurationError, match="name:weight:share"):
        parse_classes("gold:3")
    with pytest.raises(ConfigurationError, match="bad class spec"):
        parse_classes("gold:x:0.5")
    with pytest.raises(ConfigurationError, match="no classes"):
        parse_classes(" , ")


def test_class_validation():
    with pytest.raises(ConfigurationError, match="weight"):
        TrafficClass("x", weight=0, uplink_share=0.5)
    with pytest.raises(ConfigurationError, match="uplink_share"):
        TrafficClass("x", weight=1, uplink_share=1.5)
    with pytest.raises(ConfigurationError, match="duplicate"):
        validate_classes(
            (
                TrafficClass("x", weight=1, uplink_share=0.4),
                TrafficClass("x", weight=1, uplink_share=0.4),
            )
        )
    with pytest.raises(ConfigurationError, match="sum"):
        validate_classes(
            (
                TrafficClass("a", weight=1, uplink_share=0.8),
                TrafficClass("b", weight=1, uplink_share=0.8),
            )
        )
    with pytest.raises(ConfigurationError, match="uplink_streams"):
        PolicyShaper(DEFAULT_CLASSES, uplink_streams=-1.0)
    with pytest.raises(ConfigurationError, match="burst_slots"):
        PolicyShaper(DEFAULT_CLASSES, uplink_streams=1.0, burst_slots=0.5)
