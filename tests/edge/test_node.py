"""Tests for repro.edge.node — decisions, dealing, and re-allocation."""

import pytest

from repro.cluster.routing import PrefixAwareRouter
from repro.cluster.topology import EdgeSpec
from repro.edge.cache import allocate_prefixes
from repro.edge.node import EdgeNode, EdgeTier
from repro.edge.shaping import DEFAULT_CLASSES, PolicyShaper, TrafficClass
from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams
from repro.workload.popularity import ZipfCatalog

N_SEGMENTS = 10


def make_node(
    cache_segments=12,
    uplink=20.0,
    shares=(0.5, 0.3, 0.2),
    classes=DEFAULT_CLASSES,
    policy="popularity",
):
    spec = EdgeSpec(
        edge_id=0, cache_segments=cache_segments, uplink_streams=uplink
    )
    return EdgeNode(
        spec,
        allocate_prefixes(policy, list(shares), cache_segments, N_SEGMENTS),
        PolicyShaper(classes, uplink),
        slot_duration=20.0,
    )


class TestEdgeNode:
    def test_cold_title_misses(self):
        node = make_node(cache_segments=2)  # budget 2: title 2 gets no prefix
        decision = node.admit(2, slot=5)
        assert not decision.hit
        assert node.misses == 1 and node.hits == 0

    def test_hit_joins_origin_for_the_suffix(self):
        node = make_node(cache_segments=4)
        prefix = node.allocation.prefix_of(0)
        assert 0 < prefix < N_SEGMENTS
        decision = node.admit(0, slot=5)
        assert decision.hit and not decision.served_fully
        assert decision.first_segment == prefix + 1
        assert decision.join_slot == 5  # no deferral on an idle uplink
        assert decision.wait == 0.0
        assert decision.edge_segments == prefix
        assert node.segments_served == prefix

    def test_fully_cached_title_never_joins(self):
        node = make_node(cache_segments=3 * N_SEGMENTS)
        decision = node.admit(0, slot=2)
        assert decision.hit and decision.served_fully
        assert decision.edge_segments == N_SEGMENTS

    def test_deferral_shifts_join_and_wait(self):
        classes = (TrafficClass("only", weight=1, uplink_share=1.0),)
        node = make_node(
            cache_segments=N_SEGMENTS, uplink=5.0, shares=(1.0,), classes=classes
        )
        # Prefix costs 10 tokens; the bucket holds 20 (burst 4 x rate 5),
        # so the third request must wait for refills.
        assert node.admit(0, slot=0).join_slot == 0
        assert node.admit(0, slot=0).served_fully  # k = n: no join at all
        third = node.admit(0, slot=0)
        assert third.wait > 0.0
        assert third.wait == pytest.approx(
            node.shaper.deferral_slots["only"] * 20.0
        )

    def test_zero_uplink_class_bypasses_to_origin(self):
        classes = (TrafficClass("free", weight=1, uplink_share=0.0),)
        node = make_node(cache_segments=6, shares=(1.0,), classes=classes)
        decision = node.admit(0, slot=1)
        assert not decision.hit
        assert node.bypassed == 1 and node.hits == 0

    def test_allocation_must_fit_budget(self):
        spec = EdgeSpec(edge_id=0, cache_segments=2, uplink_streams=1.0)
        allocation = allocate_prefixes("popularity", [1.0], 5, N_SEGMENTS)
        with pytest.raises(ConfigurationError, match="budget"):
            EdgeNode(spec, allocation, PolicyShaper(), slot_duration=20.0)


class TestEdgeTier:
    def make_tier(self, n_nodes=2, **tier_kwargs):
        nodes = [
            EdgeNode(
                EdgeSpec(edge_id=i, cache_segments=4, uplink_streams=20.0),
                allocate_prefixes(
                    "popularity", [0.5, 0.3, 0.2], 4, N_SEGMENTS
                ),
                PolicyShaper(DEFAULT_CLASSES, 20.0),
                slot_duration=20.0,
            )
            for i in range(n_nodes)
        ]
        catalog = ZipfCatalog(n_videos=3, theta=1.0)
        return EdgeTier(nodes, policy="popularity", catalog=catalog, **tier_kwargs)

    def test_round_robin_dealing(self):
        tier = self.make_tier()
        for _ in range(4):
            tier.admit(0, 0.0, 0, 20.0)
        assert [node.hits for node in tier.nodes] == [2, 2]

    def test_prefix_map_feeds_the_router(self):
        router = PrefixAwareRouter()
        tier = self.make_tier(router=router)
        assert tier.prefix_map() == {
            title: k
            for title, k in enumerate(tier.nodes[0].allocation.prefixes)
            if k > 0
        }
        assert router._prefixes == tier.prefix_map()

    def test_drift_reallocates_deterministically(self):
        results = []
        for _ in range(2):
            rng = RandomStreams(7).get("edge-drift")
            tier = self.make_tier(drift=0.5, reallocate_every=10, rng=rng)
            for slot in range(31):
                tier.begin_slot(slot)
            results.append(
                tuple(node.allocation.prefixes for node in tier.nodes)
            )
        assert results[0] == results[1]
        assert all(node.reallocations == 3 for node in tier.nodes)

    def test_drift_needs_interval_and_rng(self):
        with pytest.raises(ConfigurationError, match="reallocate_every"):
            self.make_tier(drift=0.5)
        with pytest.raises(ConfigurationError, match="generator"):
            self.make_tier(drift=0.5, reallocate_every=10)

    def test_aggregates(self):
        tier = self.make_tier()
        for title in (0, 2, 2):
            tier.admit(title, 0.0, 0, 20.0)
        assert tier.hits + tier.misses == 3
        assert 0.0 <= tier.hit_ratio <= 1.0
        counters = tier.class_counters()
        assert set(counters) == {"premium", "best-effort"}
        assert sum(entry["requests"] for entry in counters.values()) == tier.hits
