"""Tests for repro.edge.cache — the allocation invariants the tier rests on.

The two load-bearing properties (hypothesis, derandomized):

* **budget safety** — no policy ever allocates more segments than the
  budget, for any shares / budget / video length;
* **monotonicity** — growing the budget never shrinks any title's prefix
  (the greedy waterfill at ``B+1`` extends the allocation at ``B``), so
  the expected hit ratio is monotone non-decreasing in the budget.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.edge.cache import (
    PREFIX_POLICY_NAMES,
    CacheAllocation,
    allocate_prefixes,
)
from repro.errors import ConfigurationError
from repro.workload.popularity import ZipfCatalog

SHARES = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=1,
    max_size=12,
).filter(lambda shares: sum(shares) > 0)


@settings(max_examples=60, derandomize=True, deadline=None)
@given(
    policy=st.sampled_from(PREFIX_POLICY_NAMES),
    shares=SHARES,
    budget=st.integers(min_value=0, max_value=500),
    n_segments=st.integers(min_value=1, max_value=60),
)
def test_allocation_never_exceeds_budget(policy, shares, budget, n_segments):
    allocation = allocate_prefixes(policy, shares, budget, n_segments)
    assert allocation.total_segments <= budget
    assert all(0 <= k <= n_segments for k in allocation.prefixes)


@settings(max_examples=60, derandomize=True, deadline=None)
@given(
    policy=st.sampled_from(PREFIX_POLICY_NAMES),
    shares=SHARES,
    budget=st.integers(min_value=0, max_value=200),
    step=st.integers(min_value=1, max_value=50),
    n_segments=st.integers(min_value=1, max_value=40),
)
def test_prefixes_monotone_in_budget(policy, shares, budget, step, n_segments):
    small = allocate_prefixes(policy, shares, budget, n_segments)
    large = allocate_prefixes(policy, shares, budget + step, n_segments)
    # Per-title prefixes only grow, so a hit at budget B stays a hit at
    # B + step — measured hit ratio on any fixed arrival sequence is
    # monotone, and so is the analytic expectation.
    assert all(a <= b for a, b in zip(small.prefixes, large.prefixes))
    probabilities = [p / sum(shares) for p in shares]
    assert small.expected_hit_ratio(probabilities) <= (
        large.expected_hit_ratio(probabilities) + 1e-12
    )


def test_popularity_waterfill_favours_hot_titles():
    shares = ZipfCatalog(n_videos=4, theta=1.0).probabilities
    allocation = allocate_prefixes("popularity", shares, 20, 30)
    assert allocation.prefixes[0] >= allocation.prefixes[1]
    assert allocation.prefixes[1] >= allocation.prefixes[3]
    assert allocation.total_segments == 20


def test_popularity_extension_property():
    shares = ZipfCatalog(n_videos=5, theta=1.0).probabilities
    previous = allocate_prefixes("popularity", shares, 0, 12)
    for budget in range(1, 61):
        current = allocate_prefixes("popularity", shares, budget, 12)
        grown = [
            b - a for a, b in zip(previous.prefixes, current.prefixes)
        ]
        assert sum(grown) in (0, 1)  # 0 only once the catalog is saturated
        assert all(g >= 0 for g in grown)
        previous = current


def test_uniform_ignores_popularity():
    allocation = allocate_prefixes("uniform", [0.9, 0.05, 0.05], 7, 30)
    assert allocation.prefixes == (3, 2, 2)


def test_proportional_tracks_shares():
    allocation = allocate_prefixes("proportional", [0.5, 0.3, 0.2], 10, 30)
    assert allocation.prefixes == (5, 3, 2)


def test_budget_clamped_to_catalog_capacity():
    allocation = allocate_prefixes("popularity", [0.6, 0.4], 1000, 10)
    assert allocation.prefixes == (10, 10)
    assert allocation.budget == 20


def test_expected_hit_ratio_is_cached_mass():
    allocation = CacheAllocation(
        policy="popularity", budget=5, n_segments=10, prefixes=(3, 2, 0)
    )
    assert allocation.expected_hit_ratio([0.5, 0.3, 0.2]) == pytest.approx(0.8)
    assert allocation.titles_cached == 2


def test_validation():
    with pytest.raises(ConfigurationError, match="unknown prefix policy"):
        allocate_prefixes("lru", [1.0], 5, 10)
    with pytest.raises(ConfigurationError, match="budget"):
        allocate_prefixes("popularity", [1.0], -1, 10)
    with pytest.raises(ConfigurationError, match="n_segments"):
        allocate_prefixes("popularity", [1.0], 5, 0)
    with pytest.raises(ConfigurationError, match=">= 1 title"):
        allocate_prefixes("popularity", [], 5, 10)
    with pytest.raises(ConfigurationError, match=">= 0"):
        allocate_prefixes("popularity", [0.5, -0.5], 5, 10)
    allocation = allocate_prefixes("popularity", [1.0], 5, 10)
    with pytest.raises(ConfigurationError, match="outside catalog"):
        allocation.prefix_of(1)
    with pytest.raises(ConfigurationError, match="shares for"):
        allocation.expected_hit_ratio([0.5, 0.5])
