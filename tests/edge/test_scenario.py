"""Tests for repro.edge.scenario — the hierarchy's acceptance criteria.

The load-bearing assertions:

* **golden zero-budget** — a hierarchy with no cache reproduces the pure
  cluster DHB run bit-for-bit (same arrivals, routing, schedules, waits);
* **the cache pays** — at the stock 25 % budget the measured hit ratio
  clears 0.5 and origin demand drops against the zero-budget baseline,
  monotonically in the budget;
* **backend equivalence** — ``edge-scenario`` specs return identical
  results from the serial and process backends.
"""

import pytest

from repro.cluster.scenario import run_scenario
from repro.edge.scenario import preset_hierarchy, run_hierarchy
from repro.edge.shaping import TrafficClass
from repro.edge.study import run_budget_study
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Observation
from repro.runtime import Engine, RunSpec


def quick_hierarchy(**overrides):
    scenario = preset_hierarchy(quick=True)
    if overrides:
        from dataclasses import replace

        scenario = replace(scenario, **overrides)
    return scenario


def test_zero_budget_is_bit_for_bit_the_pure_cluster():
    scenario = quick_hierarchy().with_cache_budget(0)
    hierarchy = run_hierarchy(scenario)
    baseline = run_scenario(scenario.cluster())
    assert hierarchy.cluster.to_dict() == baseline.to_dict()
    assert hierarchy.hits == 0
    assert hierarchy.hit_ratio == 0.0
    assert hierarchy.edge_segments_served == 0


def test_quick_preset_hit_ratio_clears_the_bar():
    result = run_hierarchy(preset_hierarchy(quick=True))
    assert result.hit_ratio > 0.5
    assert result.edge_segments_served > 0
    assert sum(edge.hits for edge in result.edges) == result.hits
    assert sum(edge.segments_served for edge in result.edges) == (
        result.edge_segments_served
    )


def test_cache_budget_reduces_origin_demand_monotonically():
    base = quick_hierarchy()
    study = run_budget_study(base, fractions=(0.0, 0.25, 1.0))
    saved = [point.backbone_saved for point in study.points]
    assert saved[0] == 0.0
    assert saved == sorted(saved)
    assert saved[1] > 0.05
    assert study.points[-1].backbone_saved == pytest.approx(1.0)
    bounds = [point.theory_bound for point in study.points]
    assert bounds == sorted(bounds)
    # Measured savings cannot beat the saturation bound's full-cache limit.
    assert all(point.backbone_saved <= 1.0 + 1e-9 for point in study.points)


def test_waits_never_worse_than_baseline_on_hits():
    scenario = quick_hierarchy()
    result = run_hierarchy(scenario)
    baseline = run_scenario(scenario.with_cache_budget(0).cluster())
    # Prefix hits start at the slot boundary (or a shaped deferral);
    # the mean wait must not regress against the pure-cluster run.
    assert result.cluster.mean_wait <= baseline.mean_wait + 1e-9


def test_suffix_joins_schedule_fewer_instances():
    scenario = quick_hierarchy()
    result = run_hierarchy(scenario)
    baseline = run_scenario(scenario.with_cache_budget(0).cluster())
    assert (
        result.origin_segments_transmitted
        < sum(s.transmitted_instances for s in baseline.servers)
    )


def test_metrics_emitted():
    registry = MetricsRegistry()
    run_hierarchy(
        preset_hierarchy(quick=True),
        observation=Observation(metrics=registry, trace=None),
    )
    snapshot = registry.to_dict()
    assert snapshot["gauges"]["edge.cache.hit_ratio"]["value"] > 0.5
    assert snapshot["counters"]["edge.cache.hits"] > 0
    assert snapshot["counters"]["edge.segments_served"] > 0
    assert "edge.class.premium.requests" in snapshot["counters"]
    assert "edge.class.best-effort.requests" in snapshot["counters"]


def test_serial_and_process_backends_agree():
    scenario = quick_hierarchy()
    specs = [RunSpec("edge-scenario", (scenario,), label=scenario.name)]
    with Engine(n_jobs=1) as engine:
        serial = engine.run_values(specs)[0]
    with Engine(n_jobs=2) as engine:
        pooled = engine.run_values(specs)[0]
    assert serial.to_dict() == pooled.to_dict()


def test_drift_reallocation_is_reproducible():
    scenario = quick_hierarchy(drift=0.4, reallocate_every=40)
    first = run_hierarchy(scenario)
    second = run_hierarchy(scenario)
    assert first.to_dict() == second.to_dict()
    assert sum(edge.reallocations for edge in first.edges) > 0


def test_drift_does_not_perturb_the_arrival_streams():
    # The drift RNG is a named stream: switching drift on must not change
    # which requests arrive, only how caches re-allocate.  Every in-horizon
    # arrival passes through the edge tier exactly once, so the decision
    # total is the arrival count — identical with and without drift.
    still = run_hierarchy(quick_hierarchy())
    drifting = run_hierarchy(quick_hierarchy(drift=0.4, reallocate_every=40))
    assert still.hits + still.misses + still.bypassed == (
        drifting.hits + drifting.misses + drifting.bypassed
    )


def test_validation():
    from dataclasses import replace

    with pytest.raises(ConfigurationError, match="prefix policy"):
        quick_hierarchy(prefix_policy="lru")
    with pytest.raises(ConfigurationError, match="reallocate_every"):
        quick_hierarchy(drift=0.5)
    with pytest.raises(ConfigurationError, match="require DHB"):
        quick_hierarchy(protocol="npb")
    with pytest.raises(ConfigurationError, match="cache_fraction"):
        preset_hierarchy(cache_fraction=1.5)
    # Zero-budget hierarchies accept any slotted protocol (nothing to join).
    zero = quick_hierarchy().with_cache_budget(0)
    assert replace(zero, protocol="npb").protocol == "npb"


def test_shaped_out_class_bypasses_at_scale():
    classes = (
        TrafficClass("premium", weight=1, uplink_share=1.0),
        TrafficClass("free", weight=1, uplink_share=0.0),
    )
    result = run_hierarchy(quick_hierarchy(classes=classes))
    assert result.bypassed > 0
    assert result.class_totals["free"]["bypassed"] == result.bypassed
    assert 0.0 < result.hit_ratio < 1.0


def test_render_and_to_dict():
    result = run_hierarchy(preset_hierarchy(quick=True))
    text = result.render()
    assert "hit ratio" in text and "origin demand" in text
    snapshot = result.to_dict()
    assert snapshot["hit_ratio"] == pytest.approx(result.hit_ratio)
    assert snapshot["cluster"]["admitted"] == result.cluster.admitted
