"""Run every module's doctests.

Doc examples are part of the public contract; this keeps them honest.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
)


@pytest.mark.parametrize("module_name", MODULES + ["repro"])
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
