"""Tests for repro.cluster.faults — fault plans and degraded-mode repair."""

import pytest

from repro.cluster.admission import CappedServer
from repro.cluster.faults import (
    ChannelLoss,
    CrashWindow,
    FaultSchedule,
    fail_over,
    lost_instances,
    random_fault_schedule,
    reschedule_instance,
    supports_rescheduling,
)
from repro.cluster.topology import ServerSpec, uniform_topology
from repro.core.dhb import DHBProtocol
from repro.errors import ClusterError
from repro.protocols.ud import UniversalDistributionProtocol
from repro.sim.rng import RandomStreams


def make_server(server_id, titles=(0,), capacity=10):
    return CappedServer(
        ServerSpec(server_id, capacity),
        list(titles),
        lambda title: DHBProtocol(n_segments=6),
    )


class TestFaultSchedule:
    def test_window_validation(self):
        with pytest.raises(ClusterError):
            CrashWindow(server_id=0, start_slot=5, end_slot=5)
        with pytest.raises(ClusterError):
            ChannelLoss(server_id=0, start_slot=0, end_slot=4, fraction=1.5)
        with pytest.raises(ClusterError, match="overlapping"):
            FaultSchedule(
                crashes=(
                    CrashWindow(0, 10, 20),
                    CrashWindow(0, 15, 25),
                )
            )

    def test_validate_against_topology(self):
        topology = uniform_topology(2, capacity=8, n_titles=2)
        schedule = FaultSchedule(crashes=(CrashWindow(9, 1, 5),))
        with pytest.raises(ClusterError, match="unknown server"):
            schedule.validate_against(topology)

    def test_transitions_and_is_down(self):
        schedule = FaultSchedule(crashes=(CrashWindow(1, 10, 20),))
        assert schedule.crashes_at(10) == [1]
        assert schedule.recoveries_at(20) == [1]
        assert schedule.is_down(1, 10) and schedule.is_down(1, 19)
        assert not schedule.is_down(1, 20) and not schedule.is_down(0, 10)

    def test_effective_capacity_worst_loss_wins(self):
        schedule = FaultSchedule(
            losses=(
                ChannelLoss(0, 10, 30, fraction=0.25),
                ChannelLoss(0, 20, 40, fraction=0.5),
            )
        )
        assert schedule.effective_capacity(0, 16, 5) == 16
        assert schedule.effective_capacity(0, 16, 15) == 12
        assert schedule.effective_capacity(0, 16, 25) == 8  # overlap: max fraction
        assert schedule.effective_capacity(1, 16, 25) == 16

    def test_random_schedule_is_deterministic(self):
        topology = uniform_topology(4, capacity=8, n_titles=4)
        first = random_fault_schedule(
            topology, 400, RandomStreams(7).get("faults"), n_crashes=2
        )
        second = random_fault_schedule(
            topology, 400, RandomStreams(7).get("faults"), n_crashes=2
        )
        assert first == second
        assert len(first.crashes) == 2
        victims = {crash.server_id for crash in first.crashes}
        assert len(victims) == 2
        for crash in first.crashes:
            assert 100 <= crash.start_slot < 300
            assert crash.end_slot <= 400


class TestDegradedMode:
    def test_supports_rescheduling_is_dhb_gated(self):
        assert supports_rescheduling(DHBProtocol(n_segments=4))
        assert not supports_rescheduling(
            UniversalDistributionProtocol(n_segments=4)
        )

    def test_lost_instances_enumerates_future_only(self):
        server = make_server(0)
        server.admit(0, slot=0)  # S_j scheduled in slot j for j=1..6
        lost = lost_instances(server, crash_slot=3)
        assert {(i.segment, i.due_slot) for i in lost} == {
            (3, 3), (4, 4), (5, 5), (6, 6)
        }

    def test_reschedule_shares_or_places_within_window(self):
        target = DHBProtocol(n_segments=6)
        target.handle_request(slot=0)  # S_4 already due in slot 4
        slot, shared = reschedule_instance(target, crash_slot=3, segment=4, due_slot=4)
        assert shared and slot == 4
        # S_1's instance (slot 1) is past; a fresh one must land in [3, 5].
        slot, shared = reschedule_instance(target, crash_slot=3, segment=1, due_slot=5)
        assert not shared and 3 <= slot <= 5
        assert target.schedule.load(slot) >= 1

    def test_reschedule_rejects_non_dhb(self):
        with pytest.raises(ClusterError, match="reschedule"):
            reschedule_instance(
                UniversalDistributionProtocol(n_segments=4),
                crash_slot=1,
                segment=1,
                due_slot=2,
            )

    def test_fail_over_moves_every_lost_instance(self):
        crashed = make_server(0)
        survivor = make_server(1)
        crashed.admit(0, slot=0)
        report = fail_over(crashed, lambda title: [survivor], crash_slot=3)
        assert report.crashed_server == 0
        assert report.lost_for_good == 0
        assert len(report.events) == 4  # S_3..S_6 were still owed
        assert survivor.failover_clients_in == 4
        assert not crashed.alive
        for event in report.events:
            assert event.to_server == 1
            assert 3 <= event.placed_slot <= event.due_slot

    def test_fail_over_counts_unrecoverable_titles(self):
        crashed = make_server(0)
        crashed.admit(0, slot=0)
        report = fail_over(crashed, lambda title: [], crash_slot=2)
        assert report.lost_for_good == 5  # S_2..S_6
        assert report.events == []
