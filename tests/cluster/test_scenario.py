"""Tests for repro.cluster.scenario — the acceptance criteria of the layer.

The three load-bearing assertions:

* **statistical multiplexing** — pooling a replicated catalog on a cluster
  needs strictly less capacity at a 10^-3 overflow than provisioning each
  title on its own server;
* **degraded mode** — a mid-run crash loses no admitted request's segments
  (every lost instance reappears on a survivor inside its delivery window,
  and nothing is deferred), with the rerouted load visible in the
  survivors' ``cluster.*`` metrics;
* **parallel determinism** — a scenario batch run across a process pool is
  bit-for-bit the serial run (results, traces, and every deterministic
  metric; wall-clock timers are exempt by nature).
"""

import pytest

from repro.cluster.faults import NO_FAULTS, CrashWindow, FaultSchedule
from repro.cluster.scenario import (
    ClusterScenario,
    preset_scenarios,
    run_scenario,
    run_scenarios,
)
from repro.cluster.topology import uniform_topology
from repro.errors import ClusterError
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import MemoryTraceSink, Observation


def quick_scenario(**overrides):
    defaults = dict(
        name="test",
        topology=uniform_topology(4, capacity=16, n_titles=6),
        router="affinity",
        n_segments=30,
        slot_duration=20.0,
        horizon_slots=240,
        warmup_slots=40,
        total_rate_per_hour=240.0,
        seed=2001,
    )
    defaults.update(overrides)
    return ClusterScenario(**defaults)


class TestScenarioValidation:
    def test_rejects_unknown_router_and_non_slotted_protocol(self):
        with pytest.raises(ClusterError):
            quick_scenario(router="dns")
        with pytest.raises(ClusterError):
            quick_scenario(protocol="patching")

    def test_rejects_crashes_for_non_reschedulable_protocol(self):
        faults = FaultSchedule(crashes=(CrashWindow(0, 100, 120),))
        with pytest.raises(ClusterError, match="DHB"):
            quick_scenario(protocol="ud", faults=faults)
        # Channel loss alone is fine for any slotted protocol.
        quick_scenario(protocol="ud")

    def test_rejects_fault_on_unknown_server(self):
        with pytest.raises(ClusterError, match="unknown server"):
            quick_scenario(faults=FaultSchedule(crashes=(CrashWindow(9, 10, 20),)))


class TestStatisticalMultiplexing:
    def test_pooled_capacity_strictly_below_per_title_sum(self):
        """The acceptance criterion: a seeded N-server replicated-catalog
        run needs strictly less capacity for a 10^-3 overflow than the sum
        of per-title single-server provisioning."""
        result = run_scenario(quick_scenario())
        pooled = result.capacity_for_overflow(1e-3)
        naive = result.naive_capacity_sum(1e-3)
        assert pooled < naive
        assert result.rejected == 0
        assert result.deferred_instance_slots == 0

    def test_per_title_series_sum_to_aggregate(self):
        result = run_scenario(quick_scenario())
        assert result.per_title is not None
        assert (result.per_title.sum(axis=0) == result.aggregate).all()

    def test_title_series_can_be_disabled(self):
        result = run_scenario(quick_scenario(keep_title_series=False))
        assert result.per_title is None
        with pytest.raises(ClusterError):
            result.naive_capacity_sum(1e-3)


class TestDegradedMode:
    CRASH = FaultSchedule(crashes=(CrashWindow(0, 120, 150),))

    def scenario(self):
        return quick_scenario(
            topology=uniform_topology(4, capacity=24, n_titles=6),
            faults=self.CRASH,
        )

    def test_crash_loses_no_admitted_segment(self):
        registry = MetricsRegistry()
        result = run_scenario(
            self.scenario(), observation=Observation(metrics=registry)
        )
        assert result.crashes == 1
        assert result.instances_lost == 0
        assert len(result.failovers) > 0
        # Every orphaned instance reappears inside its delivery window on a
        # surviving server, and nothing was deferred past its slot — so
        # every admitted client receives every segment on time.
        for event in result.failovers:
            assert event.from_server == 0
            assert event.to_server != 0
            assert event.slot <= event.placed_slot <= event.due_slot
        assert result.deferred_instance_slots == 0
        assert result.rejected == 0

    def test_rerouted_load_visible_in_survivor_metrics(self):
        registry = MetricsRegistry()
        result = run_scenario(
            self.scenario(), observation=Observation(metrics=registry)
        )
        counters = registry.to_dict()["counters"]
        assert counters["cluster.crashes"] == 1
        assert counters["cluster.failover.instances"] == len(result.failovers)
        assert counters["cluster.failover.lost"] == 0
        assert counters["cluster.server.0.down_slots"] == 30
        survivor_in = sum(
            counters[f"cluster.server.{server_id}.failover_in"]
            for server_id in (1, 2, 3)
        )
        assert survivor_in == len(result.failovers) > 0
        assert counters["cluster.server.0.failover_in"] == 0

    def test_crashed_server_takes_requests_again_after_recovery(self):
        result = run_scenario(self.scenario())
        summary = result.servers[0]
        assert summary.down_slots == 30
        # Affinity routing sends its primary titles back after recovery.
        assert summary.admitted > 0


class TestOverload:
    def test_saturated_cluster_rejects_visibly(self):
        registry = MetricsRegistry()
        scenario = quick_scenario(
            topology=uniform_topology(2, capacity=2, n_titles=4),
            total_rate_per_hour=720.0,
            backlog_limit=1,
            horizon_slots=120,
            warmup_slots=20,
        )
        result = run_scenario(scenario, observation=Observation(metrics=registry))
        assert result.rejected > 0
        assert result.admitted > 0
        counters = registry.to_dict()["counters"]
        assert counters["cluster.rejected"] == result.rejected
        assert result.deferred_instance_slots > 0


class TestDeterminism:
    def test_same_scenario_same_result(self):
        scenario = quick_scenario()
        assert run_scenario(scenario).to_dict() == run_scenario(scenario).to_dict()

    def test_parallel_is_bit_for_bit_serial(self):
        scenarios = preset_scenarios(seed=2001, quick=True)

        def run(n_jobs):
            registry = MetricsRegistry()
            sink = MemoryTraceSink()
            results = run_scenarios(
                scenarios,
                n_jobs=n_jobs,
                observation=Observation(metrics=registry, trace=sink),
            )
            return [r.to_dict() for r in results], registry.to_dict(), sink.records

        serial_results, serial_metrics, serial_trace = run(1)
        parallel_results, parallel_metrics, parallel_trace = run(3)
        assert parallel_results == serial_results
        assert parallel_trace == serial_trace
        # Wall-clock timers can never be bit-for-bit; everything else must.
        for kind in ("counters", "gauges", "histograms"):
            assert parallel_metrics[kind] == serial_metrics[kind]
        assert sorted(parallel_metrics["timers"]) == sorted(serial_metrics["timers"])

    def test_results_arrive_in_input_order(self):
        scenarios = preset_scenarios(seed=2001, quick=True)
        results = run_scenarios(scenarios, n_jobs=2)
        assert [r.scenario for r in results] == [s.name for s in scenarios]


class TestPresets:
    def test_presets_cover_the_three_stories(self):
        names = [s.name for s in preset_scenarios(quick=True)]
        assert names == ["baseline", "skewed", "crash"]
        full = preset_scenarios(quick=False)
        assert all(s.horizon_slots > s.warmup_slots for s in full)
        crash = [s for s in full if s.name == "crash"][0]
        assert crash.faults is not NO_FAULTS
        assert crash.faults.crashes[0].start_slot < crash.horizon_slots
