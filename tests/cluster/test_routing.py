"""Tests for repro.cluster.routing and admission — policies under the cap."""

import pytest

from repro.cluster.admission import CappedServer
from repro.cluster.routing import (
    AffinityRouter,
    LeastLoadedRouter,
    PrefixAwareRouter,
    RoundRobinRouter,
    make_router,
)
from repro.cluster.topology import ServerSpec
from repro.core.dhb import DHBProtocol
from repro.errors import ClusterError


def make_server(server_id, capacity=10, titles=(0,), backlog_limit=None):
    return CappedServer(
        ServerSpec(server_id, capacity),
        list(titles),
        lambda title: DHBProtocol(n_segments=6),
        backlog_limit=backlog_limit,
    )


class TestCappedServer:
    def test_admit_schedules_into_protocol(self):
        server = make_server(0)
        server.admit(0, slot=1)
        assert server.admitted == 1
        # DHB on an idle schedule: S_j lands in slot 1 + j.
        assert server.demand(2) == 1

    def test_admit_unknown_title_or_down_server(self):
        server = make_server(0, titles=(0, 1))
        with pytest.raises(ClusterError, match="no replica"):
            server.admit(7, slot=1)
        server.crash(1)
        with pytest.raises(ClusterError, match="down"):
            server.admit(0, slot=1)

    def test_cap_defers_and_carries_backlog(self):
        server = make_server(0, capacity=2)
        for _ in range(4):
            server.admit(0, slot=0)
        # Slot 1 now owes 1 instance per distinct segment window; force
        # overload by checking the ledger arithmetic directly.
        demand = server.demand(1)
        report = server.finalize_slot(1, capacity=1)
        assert report.demand == demand
        assert report.transmitted == min(demand + 0, 1)
        assert report.backlog == demand - report.transmitted
        assert server.deferred_instance_slots == report.backlog

    def test_headroom_follows_backlog_limit(self):
        server = make_server(0, capacity=5, backlog_limit=2)
        assert server.has_headroom()
        server.admit(0, slot=0)
        server.finalize_slot(1, capacity=0)  # defer everything scheduled
        if server.backlog >= 2:
            assert not server.has_headroom()

    def test_crash_discards_schedule_and_recover_restores(self):
        server = make_server(0)
        server.admit(0, slot=0)
        assert server.demand(1) > 0
        server.crash(1)
        assert not server.alive
        assert server.backlog == 0
        report = server.finalize_slot(1)
        assert not report.alive and report.transmitted == 0
        assert server.down_slots == 1
        server.recover()
        assert server.alive
        assert server.demand(2) == 0  # fresh, empty schedules
        server.admit(0, slot=2)
        assert server.demand(3) == 1

    def test_validation(self):
        with pytest.raises(ClusterError):
            make_server(0, backlog_limit=0)
        server = make_server(0)
        with pytest.raises(ClusterError):
            server.finalize_slot(0, capacity=-1)


class TestRouters:
    def test_round_robin_cycles_per_title(self):
        router = RoundRobinRouter()
        servers = [make_server(i) for i in range(3)]
        picks = [router.choose(0, 0, servers).server_id for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]
        # Independent rotation per title.
        assert router.choose(1, 0, servers).server_id == 0

    def test_least_loaded_prefers_light_server(self):
        light, heavy = make_server(0), make_server(1)
        for _ in range(3):
            heavy.admit(0, slot=0)
        router = LeastLoadedRouter()
        assert router.choose(0, 0, [heavy, light]) is light
        # Ties break toward the earlier candidate (preference order).
        assert router.choose(0, 0, [make_server(2), make_server(3)]).server_id == 2

    def test_affinity_sticks_to_first_candidate(self):
        router = AffinityRouter()
        servers = [make_server(0), make_server(1)]
        for _ in range(5):
            assert router.choose(0, 0, servers) is servers[0]

    def test_all_reject_on_empty_candidates(self):
        for name in ("round-robin", "least-loaded", "affinity", "prefix-aware"):
            assert make_router(name).choose(0, 0, []) is None

    def test_make_router_unknown(self):
        with pytest.raises(ClusterError):
            make_router("random")


def pressured_server(server_id, slots=4):
    """A server carrying deferred backlog — nonzero pressure at ``slots``."""
    server = make_server(server_id)
    for slot in range(slots):
        server.admit(0, slot=slot)
        server.finalize_slot(slot + 1, capacity=0)
    return server


class TestPrefixAwareRouter:
    def test_empty_map_is_exactly_affinity(self):
        router = make_router("prefix-aware")
        assert isinstance(router, PrefixAwareRouter)
        heavy, light = pressured_server(0), make_server(1)
        # Without a cached prefix there is no slack to spend: the request
        # sticks to the loaded primary exactly as AffinityRouter would.
        for _ in range(3):
            assert router.choose(0, 4, [heavy, light]) is heavy

    def test_small_pressure_gap_stays_on_primary(self):
        heavy, light = pressured_server(0), make_server(1)
        gap = heavy.pressure(4) - light.pressure(4)
        router = PrefixAwareRouter({0: gap})
        # Gap <= slack: riding out the primary's queue preserves sharing.
        assert router.choose(0, 4, [heavy, light]) is heavy

    def test_pressure_beyond_slack_diverts(self):
        heavy, light = pressured_server(0), make_server(1)
        assert heavy.pressure(4) - light.pressure(4) > 2
        router = PrefixAwareRouter({0: 2})
        assert router.choose(0, 4, [heavy, light]) is light
        # Other titles keep affinity: the slack is per-title.
        assert router.choose(1, 4, [heavy, light]) is heavy

    def test_set_prefixes_retargets_decisions(self):
        heavy, light = pressured_server(0), make_server(1)
        router = PrefixAwareRouter()
        assert router.choose(0, 4, [heavy, light]) is heavy
        router.set_prefixes({0: 2})
        assert router.choose(0, 4, [heavy, light]) is light
