"""Tests for repro.cluster.topology — server specs and catalog placement."""

import pytest

from repro.cluster.topology import (
    CatalogPlacement,
    ClusterTopology,
    ServerSpec,
    build_placement,
    catalog_map,
    popularity_placement,
    replicated_placement,
    sharded_placement,
    uniform_topology,
)
from repro.errors import ClusterError


class TestServerSpec:
    def test_validation(self):
        with pytest.raises(ClusterError):
            ServerSpec(server_id=-1, capacity=10)
        with pytest.raises(ClusterError):
            ServerSpec(server_id=0, capacity=0)


class TestPlacements:
    def test_sharded_round_robin(self):
        placement = sharded_placement(5, 2)
        assert placement.replicas == ((0,), (1,), (0,), (1,), (0,))
        assert placement.titles_on(0) == [0, 2, 4]
        assert placement.replica_counts() == [1, 1, 1, 1, 1]

    def test_replicated_rotates_primaries(self):
        placement = replicated_placement(3, 3)
        assert placement.replicas == ((0, 1, 2), (1, 2, 0), (2, 0, 1))
        # Every title on every server, primaries spread.
        assert {servers[0] for servers in placement.replicas} == {0, 1, 2}

    def test_popularity_decays_with_rank(self):
        placement = popularity_placement(6, 4, theta=1.0)
        counts = placement.replica_counts()
        assert counts[0] == 4  # hottest title fully replicated
        assert counts == sorted(counts, reverse=True)
        assert min(counts) >= 1

    def test_popularity_min_replicas_floor(self):
        placement = popularity_placement(6, 4, theta=2.0, min_replicas=2)
        assert min(placement.replica_counts()) >= 2

    def test_build_placement_dispatch_and_unknown(self):
        assert build_placement("sharded", 4, 2).replica_counts() == [1, 1, 1, 1]
        assert build_placement("replicated", 4, 2).replica_counts() == [2, 2, 2, 2]
        with pytest.raises(ClusterError):
            build_placement("nope", 4, 2)

    def test_replicas_of_bounds(self):
        placement = sharded_placement(2, 2)
        with pytest.raises(ClusterError):
            placement.replicas_of(2)


class TestClusterTopology:
    def test_validation_catches_broken_placements(self):
        specs = (ServerSpec(0, 10), ServerSpec(1, 10))
        with pytest.raises(ClusterError, match="no replica"):
            ClusterTopology(specs, CatalogPlacement(replicas=((),)))
        with pytest.raises(ClusterError, match="unknown servers"):
            ClusterTopology(specs, CatalogPlacement(replicas=((0, 7),)))
        with pytest.raises(ClusterError, match="twice"):
            ClusterTopology(specs, CatalogPlacement(replicas=((0, 0),)))
        with pytest.raises(ClusterError, match="duplicate server ids"):
            ClusterTopology(
                (ServerSpec(0, 10), ServerSpec(0, 10)),
                CatalogPlacement(replicas=((0,),)),
            )

    def test_uniform_topology_and_catalog_map(self):
        topology = uniform_topology(3, capacity=8, n_titles=4, placement="sharded")
        assert topology.n_servers == 3
        assert topology.n_titles == 4
        assert topology.total_capacity == 24
        assert topology.spec_of(2).capacity == 8
        mapping = catalog_map(topology)
        assert sorted(t for titles in mapping.values() for t in titles) == [0, 1, 2, 3]

    def test_spec_of_unknown(self):
        topology = uniform_topology(2, capacity=8, n_titles=2)
        with pytest.raises(ClusterError):
            topology.spec_of(9)
