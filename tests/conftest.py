"""Shared fixtures for the test suite.

Everything here is intentionally small: tests exercise behaviour, not
steady-state precision (the benchmarks own the long runs).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import SweepConfig
from repro.sim.rng import RandomStreams
from repro.video.vbr import VBRVideo


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def streams() -> RandomStreams:
    """A seeded stream factory."""
    return RandomStreams(seed=999)


@pytest.fixture
def tiny_vbr() -> VBRVideo:
    """A 12-second VBR video with a quiet opening and a mid burst."""
    return VBRVideo(
        [50.0, 50.0, 80.0, 120.0, 200.0, 260.0, 180.0, 120.0, 90.0, 70.0, 60.0, 40.0],
        name="tiny",
    )


@pytest.fixture
def quick_config() -> SweepConfig:
    """A sweep config small enough for unit tests."""
    return SweepConfig().quick(
        rates_per_hour=(10.0,), base_hours=3.0, min_requests=10
    )
