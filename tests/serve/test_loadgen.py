"""Load generation: gates, quantiles, and served-vs-simulated agreement.

The integration test here is the in-repo version of the CI ``serve-e2e``
gate: a loopback daemon, a loadgen burst, zero dropped sessions, and the
measured wait distribution agreeing with the slotted simulator's prediction
for the same arrival offsets within the documented tolerances.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.errors import ServeError
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import MemoryTraceSink
from repro.serve import (
    BroadcastDaemon,
    LoadgenConfig,
    ServeConfig,
    assert_gates,
    compare_with_simulation,
    empirical_quantile,
    generate_offsets,
    run_loadgen_async,
    wait_for_server,
)

FAST = ServeConfig(n_segments=6, slot_duration=0.05, segment_bytes=128)


class TestQuantiles:
    def test_empty(self):
        assert empirical_quantile([], 0.99) == 0.0

    def test_singleton(self):
        assert empirical_quantile([3.0], 0.5) == 3.0
        assert empirical_quantile([3.0], 0.99) == 3.0

    def test_inverse_cdf_on_known_sample(self):
        values = [float(v) for v in range(1, 101)]  # 1..100
        assert empirical_quantile(values, 0.5) == 50.0
        assert empirical_quantile(values, 0.99) == 99.0
        assert empirical_quantile(values, 1.0) == 100.0

    def test_order_independent(self):
        values = [5.0, 1.0, 4.0, 2.0, 3.0]
        assert empirical_quantile(values, 0.5) == 3.0


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"clients": 0}, "clients"),
            ({"duration_seconds": 0.0}, "duration"),
            ({"arrivals": "bursty"}, "unknown arrival kind"),
            ({"want": "everything"}, "want"),
        ],
    )
    def test_bad_config_rejected(self, kwargs, match):
        with pytest.raises(ServeError, match=match):
            LoadgenConfig(**kwargs)

    def test_offsets_reproducible_by_seed(self):
        config = LoadgenConfig(clients=50, duration_seconds=2.0, seed=11)
        assert np.array_equal(generate_offsets(config), generate_offsets(config))

    def test_uniform_offsets_are_evenly_spaced(self):
        config = LoadgenConfig(
            clients=10, duration_seconds=1.0, arrivals="uniform"
        )
        offsets = generate_offsets(config)
        assert len(offsets) == 10
        assert np.allclose(np.diff(offsets), 0.1)


class TestGates:
    def _result(self, **overrides):
        from repro.serve.loadgen import LoadgenResult

        defaults = dict(
            completed=10,
            dropped=0,
            waits=[0.01 * i for i in range(1, 11)],
            elapsed_seconds=1.0,
            n_segments=6,
            slot_duration=0.05,
        )
        defaults.update(overrides)
        return LoadgenResult(**defaults)

    def test_pass(self):
        assert_gates(self._result(), max_dropped=0, p99_bound=0.2)

    def test_dropped_gate(self):
        with pytest.raises(ServeError, match="dropped"):
            assert_gates(self._result(dropped=1), max_dropped=0)

    def test_p99_gate(self):
        with pytest.raises(ServeError, match="p99"):
            assert_gates(self._result(), p99_bound=0.05)

    def test_no_gates_no_error(self):
        assert_gates(self._result(dropped=5))

    def test_compare_requires_completions(self):
        with pytest.raises(ServeError, match="no sessions"):
            compare_with_simulation(self._result(completed=0, waits=[]))


class TestAgainstDaemon:
    def test_wait_for_server_times_out_cleanly(self):
        async def go():
            # TEST-NET-1 port: nothing listens there.
            await wait_for_server("127.0.0.1", 1, timeout=0.2)

        with pytest.raises(ServeError, match="no daemon answered"):
            asyncio.run(go())

    def test_loopback_run_matches_simulation(self):
        """Served waits agree with the slotted prediction within tolerance."""
        metrics = MetricsRegistry()
        trace = MemoryTraceSink()

        async def go():
            daemon = BroadcastDaemon(FAST, metrics=metrics)
            await daemon.start()
            host, port = daemon.address
            try:
                config = LoadgenConfig(
                    host=host,
                    port=port,
                    clients=40,
                    duration_seconds=1.5,
                    arrivals="uniform",
                    want="first",
                    seed=5,
                )
                return await run_loadgen_async(
                    config, metrics=metrics, trace=trace
                )
            finally:
                await daemon.stop()

        result = asyncio.run(go())
        assert result.dropped == 0
        assert result.completed == 40
        assert result.n_segments == FAST.n_segments
        assert result.slot_duration == FAST.slot_duration
        # Hard DHB bound: one slot, plus generous CI scheduling slack.
        assert result.max_wait <= 3 * FAST.slot_duration

        comparison = compare_with_simulation(result)
        assert comparison.predicted_mean > 0
        assert comparison.within_tolerance(), comparison.to_dict()

        # The observability outputs carried the run.
        assert metrics.counter("loadgen.sessions.completed").value == 40
        assert metrics.counter("serve.sessions.accepted").value == 40
        client_records = [
            r for r in trace.records if r.get("kind") == "client"
        ]
        assert len(client_records) == 40
        assert all(r["error"] is None for r in client_records)

    def test_want_all_completes_sessions(self):
        async def go():
            daemon = BroadcastDaemon(FAST)
            await daemon.start()
            host, port = daemon.address
            try:
                config = LoadgenConfig(
                    host=host,
                    port=port,
                    clients=5,
                    duration_seconds=0.5,
                    arrivals="uniform",
                    want="all",
                )
                return await run_loadgen_async(config)
            finally:
                await daemon.stop()

        result = asyncio.run(go())
        assert result.dropped == 0
        assert result.completed == 5
