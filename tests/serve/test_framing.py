"""Wire-format unit tests: round-trips, limits, malformed input."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ServeError
from repro.serve.framing import (
    FRAME_BYE,
    FRAME_ERROR,
    FRAME_FIN,
    FRAME_HELLO,
    FRAME_NAMES,
    FRAME_REDIRECT,
    FRAME_SEGMENT,
    FRAME_WELCOME,
    MAX_BODY_BYTES,
    MAX_HEADER_BYTES,
    Frame,
    decode_frame,
    encode_frame,
    read_frame,
)


def roundtrip(frame_type, header=None, body=b""):
    return decode_frame(encode_frame(frame_type, header, body))


class TestRoundTrip:
    @pytest.mark.parametrize("frame_type", sorted(FRAME_NAMES))
    def test_every_type_roundtrips(self, frame_type):
        frame = roundtrip(frame_type, {"k": 1}, b"xyz")
        assert frame == Frame(frame_type, {"k": 1}, b"xyz")

    def test_empty_header_and_body(self):
        frame = roundtrip(FRAME_BYE)
        assert frame.header == {}
        assert frame.body == b""

    def test_segment_payload_survives_verbatim(self):
        payload = bytes(range(256)) * 17
        frame = roundtrip(FRAME_SEGMENT, {"segment": 3, "slot": 9}, payload)
        assert frame.body == payload
        assert frame.header == {"segment": 3, "slot": 9}

    def test_unicode_header(self):
        frame = roundtrip(FRAME_ERROR, {"error": "ü ≠ u"})
        assert frame.header["error"] == "ü ≠ u"

    def test_name_property(self):
        assert Frame(FRAME_HELLO).name == "HELLO"
        assert Frame(FRAME_WELCOME).name == "WELCOME"


class TestLimitsAndMalformedInput:
    def test_unknown_type_rejected_on_encode(self):
        with pytest.raises(ServeError, match="unknown frame type"):
            encode_frame(99)

    def test_oversized_body_rejected_on_encode(self):
        with pytest.raises(ServeError, match="wire limit"):
            encode_frame(FRAME_SEGMENT, {}, b"\0" * (MAX_BODY_BYTES + 1))

    def test_oversized_header_rejected_on_encode(self):
        with pytest.raises(ServeError, match="wire limit"):
            encode_frame(FRAME_HELLO, {"pad": "x" * MAX_HEADER_BYTES})

    def test_bad_magic(self):
        raw = bytearray(encode_frame(FRAME_HELLO))
        raw[0:2] = b"ZZ"
        with pytest.raises(ServeError, match="magic"):
            decode_frame(bytes(raw))

    def test_unknown_type_rejected_on_decode(self):
        raw = bytearray(encode_frame(FRAME_HELLO))
        raw[2] = 200
        with pytest.raises(ServeError, match="unknown frame type"):
            decode_frame(bytes(raw))

    def test_truncated_frame(self):
        raw = encode_frame(FRAME_SEGMENT, {"segment": 1}, b"abc")
        with pytest.raises(ServeError, match="truncated|cut short"):
            decode_frame(raw[:-1])

    def test_trailing_bytes_rejected(self):
        raw = encode_frame(FRAME_HELLO) + b"junk"
        with pytest.raises(ServeError, match="trailing"):
            decode_frame(raw)

    def test_non_object_header_rejected(self):
        # The prefix is 7 bytes (magic, type, header length); splice the
        # empty-object header "{}" into an equal-length JSON array "[]".
        raw = encode_frame(FRAME_REDIRECT)
        assert raw[7:9] == b"{}"
        raw = raw[:7] + b"[]" + raw[9:]
        with pytest.raises(ServeError, match="JSON object"):
            decode_frame(raw)

    def test_invalid_json_header_rejected(self):
        raw = encode_frame(FRAME_REDIRECT)
        raw = raw[:7] + b"{]" + raw[9:]
        with pytest.raises(ServeError, match="not valid JSON"):
            decode_frame(raw)


class TestAsyncReadFrame:
    def run_read(self, raw, chunk=None):
        async def go():
            reader = asyncio.StreamReader()
            if chunk:
                for start in range(0, len(raw), chunk):
                    reader.feed_data(raw[start : start + chunk])
            else:
                reader.feed_data(raw)
            reader.feed_eof()
            return await read_frame(reader)

        return asyncio.run(go())

    def test_reads_one_frame(self):
        frame = self.run_read(encode_frame(FRAME_FIN, {"reason": "shutdown"}))
        assert frame.frame_type == FRAME_FIN
        assert frame.header["reason"] == "shutdown"

    def test_reads_across_tiny_chunks(self):
        raw = encode_frame(FRAME_SEGMENT, {"segment": 2}, b"payload-bytes")
        frame = self.run_read(raw, chunk=3)
        assert frame.body == b"payload-bytes"

    def test_eof_mid_frame_raises_incomplete(self):
        raw = encode_frame(FRAME_SEGMENT, {"segment": 2}, b"payload")[:-2]
        with pytest.raises(asyncio.IncompleteReadError):
            self.run_read(raw)

    def test_back_to_back_frames(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(
                encode_frame(FRAME_HELLO, {"want": "first"})
                + encode_frame(FRAME_BYE)
            )
            reader.feed_eof()
            return await read_frame(reader), await read_frame(reader)

        first, second = asyncio.run(go())
        assert first.frame_type == FRAME_HELLO
        assert second.frame_type == FRAME_BYE
