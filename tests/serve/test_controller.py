"""Controller topology: redirects, routing policies, cluster lifecycle."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ServeError
from repro.serve import (
    ControllerDaemon,
    ReplicaHandle,
    ServeConfig,
    serve_cluster,
)
from repro.cluster.routing import make_router
from repro.serve.framing import (
    FRAME_ERROR,
    FRAME_HELLO,
    FRAME_REDIRECT,
    FRAME_WELCOME,
    encode_frame,
    read_frame,
)

FAST = ServeConfig(n_segments=4, slot_duration=0.05, segment_bytes=64)


async def dial(host, port, payload=None):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(payload if payload is not None else encode_frame(FRAME_HELLO))
    await writer.drain()
    frame = await asyncio.wait_for(read_frame(reader), 5)
    writer.close()
    return frame


class TestController:
    def test_requires_replicas(self):
        with pytest.raises(ServeError, match="at least one replica"):
            ControllerDaemon([], make_router("round-robin"))

    def test_redirects_to_a_replica(self):
        async def go():
            cluster = await serve_cluster(FAST, n_replicas=2)
            try:
                frame = await dial(*cluster.address)
                replica_ports = {d.address[1] for d in cluster.replicas}
                return frame, replica_ports
            finally:
                await cluster.stop()

        frame, replica_ports = asyncio.run(go())
        assert frame.frame_type == FRAME_REDIRECT
        assert frame.header["port"] in replica_ports

    def test_non_hello_gets_error(self):
        async def go():
            cluster = await serve_cluster(FAST, n_replicas=1)
            try:
                return await dial(
                    *cluster.address, payload=encode_frame(FRAME_REDIRECT)
                )
            finally:
                await cluster.stop()

        frame = asyncio.run(go())
        assert frame.frame_type == FRAME_ERROR

    def test_round_robin_spreads_clients(self):
        async def go():
            cluster = await serve_cluster(
                FAST, n_replicas=2, router_name="round-robin"
            )
            try:
                ports = []
                for _ in range(6):
                    frame = await dial(*cluster.address)
                    ports.append(frame.header["port"])
                return ports, [d.address[1] for d in cluster.replicas]
            finally:
                await cluster.stop()

        ports, replica_ports = asyncio.run(go())
        # The per-title ring deals strictly alternately.
        assert ports == [replica_ports[i % 2] for i in range(6)]

    def test_least_loaded_prefers_idle_replica(self):
        async def go():
            cluster = await serve_cluster(
                FAST, n_replicas=2, router_name="least-loaded"
            )
            try:
                # Park two live sessions on replica 0.
                busy = cluster.replicas[0]
                writers = []
                for _ in range(2):
                    reader, writer = await asyncio.open_connection(*busy.address)
                    writer.write(encode_frame(FRAME_HELLO))
                    await writer.drain()
                    welcome = await asyncio.wait_for(read_frame(reader), 5)
                    assert welcome.frame_type == FRAME_WELCOME
                    writers.append(writer)
                frame = await dial(*cluster.address)
                for writer in writers:
                    writer.close()
                return frame.header["port"], cluster.replicas[1].address[1]
            finally:
                await cluster.stop()

        chosen_port, idle_port = asyncio.run(go())
        assert chosen_port == idle_port

    def test_unknown_router_rejected(self):
        async def go():
            await serve_cluster(FAST, n_replicas=1, router_name="nope")

        with pytest.raises(ServeError, match="unknown router"):
            asyncio.run(go())

    def test_replica_handle_pressure_without_daemon(self):
        assert ReplicaHandle("127.0.0.1", 1234).pressure(0) == 0.0

    def test_end_to_end_redirect_then_serve(self):
        """A client following the REDIRECT lands a real session."""

        async def go():
            cluster = await serve_cluster(FAST, n_replicas=2)
            try:
                frame = await dial(*cluster.address)
                reader, writer = await asyncio.open_connection(
                    frame.header["host"], frame.header["port"]
                )
                writer.write(encode_frame(FRAME_HELLO, {"want": "first"}))
                await writer.drain()
                welcome = await asyncio.wait_for(read_frame(reader), 5)
                writer.close()
                return welcome
            finally:
                await cluster.stop()

        welcome = asyncio.run(go())
        assert welcome.frame_type == FRAME_WELCOME
        assert welcome.header["n_segments"] == FAST.n_segments
