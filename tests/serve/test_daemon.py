"""Broadcast-daemon behaviour on loopback: handshake, bound, eviction.

No pytest-asyncio in the toolchain, so each test drives its own event loop
with ``asyncio.run`` from a synchronous test function.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.obs.registry import MetricsRegistry
from repro.serve import BroadcastDaemon, ServeConfig, predicted_wait_bound
from repro.serve.framing import (
    FRAME_BYE,
    FRAME_ERROR,
    FRAME_FIN,
    FRAME_HELLO,
    FRAME_SEGMENT,
    FRAME_WELCOME,
    encode_frame,
    read_frame,
)

#: Fast slots keep every test under a couple of seconds of wall time.
FAST = ServeConfig(n_segments=6, slot_duration=0.05, segment_bytes=128)


async def hello(host, port, want="first"):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(encode_frame(FRAME_HELLO, {"want": want}))
    await writer.drain()
    return reader, writer


class TestHandshake:
    def test_welcome_advertises_serving_parameters(self):
        async def go():
            daemon = BroadcastDaemon(FAST)
            await daemon.start()
            try:
                reader, writer = await hello(*daemon.address)
                welcome = await asyncio.wait_for(read_frame(reader), 5)
                writer.close()
                return welcome
            finally:
                await daemon.stop()

        welcome = asyncio.run(go())
        assert welcome.frame_type == FRAME_WELCOME
        assert welcome.header["n_segments"] == FAST.n_segments
        assert welcome.header["slot_duration"] == FAST.slot_duration
        assert welcome.header["segment_bytes"] == FAST.segment_bytes
        assert welcome.header["session"] >= 1

    def test_non_hello_first_frame_gets_error(self):
        async def go():
            daemon = BroadcastDaemon(FAST)
            await daemon.start()
            try:
                host, port = daemon.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(encode_frame(FRAME_BYE))
                await writer.drain()
                frame = await asyncio.wait_for(read_frame(reader), 5)
                writer.close()
                return frame
            finally:
                await daemon.stop()

        frame = asyncio.run(go())
        assert frame.frame_type == FRAME_ERROR
        assert "expected HELLO" in frame.header["error"]


class TestBroadcast:
    def test_first_segment_within_dhb_bound(self):
        """DHB schedules S_1 in the next slot: wait <= d plus overhead."""

        async def go():
            daemon = BroadcastDaemon(FAST)
            await daemon.start()
            loop = asyncio.get_running_loop()
            try:
                t0 = loop.time()
                reader, writer = await hello(*daemon.address)
                while True:
                    frame = await asyncio.wait_for(read_frame(reader), 5)
                    if frame.frame_type == FRAME_SEGMENT:
                        wait = loop.time() - t0
                        writer.close()
                        return frame, wait
            finally:
                await daemon.stop()

        frame, wait = asyncio.run(go())
        assert frame.header["segment"] == 1
        assert len(frame.body) == FAST.segment_bytes
        # The hard bound is one slot; 2x covers CI scheduling noise.
        assert wait <= 2 * predicted_wait_bound(FAST)

    def test_want_all_receives_every_segment(self):
        async def go():
            daemon = BroadcastDaemon(FAST)
            await daemon.start()
            try:
                reader, writer = await hello(*daemon.address, want="all")
                seen = set()
                while len(seen) < FAST.n_segments:
                    frame = await asyncio.wait_for(read_frame(reader), 5)
                    if frame.frame_type == FRAME_SEGMENT:
                        seen.add(frame.header["segment"])
                writer.close()
                return seen
            finally:
                await daemon.stop()

        assert asyncio.run(go()) == set(range(1, FAST.n_segments + 1))

    def test_fin_on_graceful_shutdown(self):
        async def go():
            daemon = BroadcastDaemon(FAST)
            await daemon.start()
            reader, writer = await hello(*daemon.address)
            await asyncio.wait_for(read_frame(reader), 5)  # WELCOME
            await daemon.stop()
            while True:
                frame = await asyncio.wait_for(read_frame(reader), 5)
                if frame.frame_type != FRAME_SEGMENT:
                    writer.close()
                    return frame

        frame = asyncio.run(go())
        assert frame.frame_type == FRAME_FIN
        assert frame.header["reason"] == "shutdown"


class TestBackpressure:
    def test_slow_client_is_evicted_not_waited_for(self):
        """A non-reading client fills its bounded queue and gets dropped,
        while a healthy client on the same daemon keeps receiving."""
        # Big frames fill the socket buffers fast, so the stalled client's
        # writer blocks and its queue backs up within a few slots.  The
        # queue bound must cover one slot's worth of instances (a tick
        # offers them without yielding), hence n_segments, not 1.
        config = ServeConfig(
            n_segments=8,
            slot_duration=0.05,
            segment_bytes=256 * 1024,
            queue_frames=8,
        )
        metrics = MetricsRegistry()

        async def drive_arrivals(address, count, spacing):
            """Fresh requests each slot keep new segment instances flowing."""
            for _ in range(count):
                reader, writer = await hello(*address)
                await asyncio.wait_for(read_frame(reader), 5)  # WELCOME
                writer.close()
                await asyncio.sleep(spacing)

        async def go():
            daemon = BroadcastDaemon(config, metrics=metrics)
            await daemon.start()
            try:
                # The slow client handshakes, then never reads a byte.
                _, slow_writer = await hello(*daemon.address)
                healthy_reader, healthy_writer = await hello(*daemon.address)
                driver = asyncio.create_task(
                    drive_arrivals(daemon.address, 30, config.slot_duration)
                )
                segments = 0
                deadline = asyncio.get_running_loop().time() + 10
                try:
                    while metrics.counter("serve.sessions.evicted").value == 0:
                        if asyncio.get_running_loop().time() > deadline:
                            raise AssertionError("no eviction within 10s")
                        frame = await asyncio.wait_for(
                            read_frame(healthy_reader), 5
                        )
                        if frame.frame_type == FRAME_SEGMENT:
                            segments += 1
                finally:
                    driver.cancel()
                slow_writer.close()
                healthy_writer.close()
                return segments
            finally:
                await daemon.stop()

        healthy_segments = asyncio.run(go())
        assert metrics.counter("serve.sessions.evicted").value >= 1
        # The healthy session was never starved by the stalled one.
        assert healthy_segments >= 1

    def test_queue_bound_resolution_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_QUEUE_FRAMES", "7")
        assert ServeConfig().resolve_queue_frames() == 7
        monkeypatch.setenv("REPRO_SERVE_QUEUE_FRAMES", "junk")
        with pytest.warns(RuntimeWarning):
            assert ServeConfig().resolve_queue_frames() == 64
        monkeypatch.setenv("REPRO_SERVE_QUEUE_FRAMES", "0")
        with pytest.warns(RuntimeWarning):
            assert ServeConfig().resolve_queue_frames() == 64
        # An explicit value is code and beats any environment setting.
        assert ServeConfig(queue_frames=3).resolve_queue_frames() == 3
