"""Tests for repro.obs.manifest."""

import json
import subprocess

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    ManifestRecorder,
    RunManifest,
    current_git_sha,
    peak_rss_bytes,
    source_repo_root,
)


class TestRunManifest:
    def test_round_trip_dict(self):
        manifest = RunManifest(
            experiment="fig7",
            protocols=["DHB Protocol"],
            params={"seed": 2001, "rates_per_hour": [2.0, 50.0]},
            seed=2001,
            git_sha="abc123",
            duration_seconds=1.5,
        )
        assert RunManifest.from_dict(manifest.to_dict()) == manifest

    def test_round_trip_json(self):
        manifest = RunManifest(experiment="sweep", seed=7)
        clone = RunManifest.from_json(manifest.to_json())
        assert clone == manifest
        assert clone.schema == MANIFEST_SCHEMA

    def test_write(self, tmp_path):
        path = tmp_path / "manifest.json"
        RunManifest(experiment="bench").write(path)
        assert json.loads(path.read_text())["experiment"] == "bench"


class TestManifestRecorder:
    def test_fills_provenance_on_exit(self):
        with ManifestRecorder("fig9", protocols=["UD"], seed=3) as recorder:
            assert recorder.manifest.started_at  # stamped on entry
        manifest = recorder.manifest
        assert manifest.experiment == "fig9"
        assert manifest.protocols == ["UD"]
        assert manifest.seed == 3
        assert manifest.duration_seconds >= 0.0
        assert manifest.python_version
        assert manifest.numpy_version
        assert manifest.platform

    def test_round_trips_after_recording(self):
        with ManifestRecorder("fig7", params={"n_segments": 99}) as recorder:
            pass
        clone = RunManifest.from_json(recorder.manifest.to_json())
        assert clone == recorder.manifest
        assert clone.params == {"n_segments": 99}


class TestProvenanceHelpers:
    def test_git_sha_in_this_repo(self):
        sha = current_git_sha()
        expected = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True
        ).stdout.strip()
        assert sha == expected

    def test_git_sha_outside_a_repo(self, tmp_path):
        assert current_git_sha(tmp_path) is None

    def test_peak_rss_positive_on_posix(self):
        peak = peak_rss_bytes()
        assert peak is None or peak > 1024 * 1024  # at least a megabyte

    def test_source_repo_root_is_the_tracking_checkout(self):
        # The test suite runs from the project checkout, which tracks the
        # package source, so the root resolves and carries HEAD.
        root = source_repo_root()
        assert root is not None
        assert current_git_sha(root) == current_git_sha()

    def test_source_repo_root_rejects_untracked_file(self, tmp_path):
        untracked = tmp_path / "module.py"
        untracked.write_text("")
        assert source_repo_root(untracked) is None

    def test_recorder_sha_comes_from_the_source_checkout(self):
        with ManifestRecorder("sweep") as recorder:
            pass
        assert recorder.manifest.git_sha == current_git_sha(source_repo_root())

    def test_recorder_records_no_sha_for_untracked_source(self, tmp_path, monkeypatch):
        # Simulate a pip-installed copy inside an unrelated enclosing repo:
        # the source is not tracked, so provenance must be None, not the
        # SHA of whatever repository surrounds site-packages (or the cwd).
        import repro.obs.manifest as manifest_module

        monkeypatch.setattr(
            manifest_module, "source_repo_root", lambda source=None: None
        )
        with ManifestRecorder("sweep") as recorder:
            pass
        assert recorder.manifest.git_sha is None
