"""Tests for repro.obs.registry."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullMetricsRegistry,
)


class TestInstruments:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        counter = registry.counter("sim.slots")
        counter.inc()
        counter.inc(4)
        assert registry.counter("sim.slots") is counter
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = MetricsRegistry().gauge("sim.warmup_slots")
        gauge.set(3)
        gauge.set(7)
        assert gauge.value == 7.0
        assert gauge.updates == 2

    def test_histogram_summary(self):
        histogram = MetricsRegistry().histogram("sim.slot_load")
        for value in (2.0, 4.0, 6.0):
            histogram.observe(value)
        assert histogram.stats.count == 3
        assert histogram.stats.mean == pytest.approx(4.0)
        assert histogram.stats.minimum == 2.0
        assert histogram.stats.maximum == 6.0

    def test_timer_span_observes_elapsed(self):
        timer = MetricsRegistry().timer("sim.run_seconds")
        with timer.time():
            pass
        assert timer.stats.count == 1
        assert timer.stats.minimum >= 0.0

    def test_instruments_lists_all_kinds(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(1)
        registry.histogram("c").observe(1.0)
        with registry.timer("d").time():
            pass
        assert sorted(name for name, _ in registry.instruments()) == list("abcd")


class TestMergeAndSerialization:
    def test_merge_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        b.counter("only_b").inc(1)
        a.merge(b)
        assert a.counter("n").value == 5
        assert a.counter("only_b").value == 1

    def test_merge_gauges_last_writer_wins_only_when_set(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g")  # touched but never set: must not clobber
        a.merge(b)
        assert a.gauge("g").value == 1.0
        b.gauge("g").set(9.0)
        a.merge(b)
        assert a.gauge("g").value == 9.0

    def test_merge_histograms_lossless(self):
        values = [1.0, 2.0, 3.0, 10.0, 20.0]
        whole = MetricsRegistry()
        for value in values:
            whole.histogram("h").observe(value)
        left, right = MetricsRegistry(), MetricsRegistry()
        for value in values[:2]:
            left.histogram("h").observe(value)
        for value in values[2:]:
            right.histogram("h").observe(value)
        left.merge(right)
        merged, direct = left.histogram("h").stats, whole.histogram("h").stats
        assert merged.count == direct.count
        assert merged.mean == pytest.approx(direct.mean)
        assert merged.variance == pytest.approx(direct.variance)
        assert (merged.minimum, merged.maximum) == (direct.minimum, direct.maximum)

    def test_dict_round_trip_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(1.0)
        registry.histogram("h").observe(3.0)
        with registry.timer("t").time():
            pass
        state = json.loads(json.dumps(registry.to_dict()))
        clone = MetricsRegistry.from_dict(state)
        assert clone.to_dict() == registry.to_dict()

    def test_merge_dict_equals_merge(self):
        a1, a2, b = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        b.counter("c").inc(2)
        b.histogram("h").observe(4.0)
        a1.merge(b)
        a2.merge_dict(b.to_dict())
        assert a1.to_dict() == a2.to_dict()


class TestNullRegistry:
    def test_disabled_flag(self):
        assert MetricsRegistry.enabled is True
        assert NULL_REGISTRY.enabled is False

    def test_instruments_are_shared_singletons(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
        assert NULL_REGISTRY.gauge("a") is NULL_REGISTRY.gauge("b")
        assert NULL_REGISTRY.histogram("a") is NULL_REGISTRY.histogram("b")
        assert NULL_REGISTRY.timer("a") is NULL_REGISTRY.timer("b")
        assert NULL_REGISTRY.timer("a").time() is NULL_REGISTRY.timer("b").time()

    def test_everything_is_a_no_op(self):
        registry = NullMetricsRegistry()
        registry.counter("c").inc(10)
        registry.gauge("g").set(5.0)
        registry.histogram("h").observe(1.0)
        with registry.timer("t").time():
            pass
        assert registry.counter("c").value == 0
        assert registry.gauge("g").value is None
        assert registry.histogram("h").stats.count == 0
        assert registry.timer("t").stats.count == 0
        assert registry.to_dict() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "timers": {},
        }

    def test_disabled_path_allocates_nothing_per_event(self):
        import tracemalloc

        registry = NULL_REGISTRY
        counter = registry.counter("warm")  # warm the accessor path
        counter.inc()
        tracemalloc.start()
        for _ in range(1000):
            registry.counter("hot").inc()
            registry.histogram("hot").observe(1.0)
            with registry.timer("hot").time():
                pass
        current, _peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # Nothing should survive the loop: no instruments, no spans, no stats.
        assert current < 4096
