"""Tests for repro.obs.trace (sinks, Observation, per-slot records)."""

import io
import json

from repro.core.dhb import DHBProtocol
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import JsonlTraceSink, MemoryTraceSink, Observation
from repro.sim.slotted import SlottedSimulation


class TestMemoryTraceSink:
    def test_buffers_copies(self):
        sink = MemoryTraceSink()
        record = {"kind": "slot", "slot": 0}
        sink.emit(record)
        record["slot"] = 99  # the sink must have copied, not aliased
        assert sink.records == [{"kind": "slot", "slot": 0}]


class TestJsonlTraceSink:
    def test_writes_one_compact_line_per_record(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.emit({"kind": "slot", "slot": 0, "streams": 2})
            sink.emit({"kind": "slot", "slot": 1, "streams": 3})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1]) == {"kind": "slot", "slot": 1, "streams": 3}
        assert " " not in lines[0]  # compact separators
        assert sink.records_written == 2

    def test_accepts_file_like_and_leaves_it_open(self):
        buffer = io.StringIO()
        sink = JsonlTraceSink(buffer)
        sink.emit({"slot": 0})
        sink.close()
        assert not buffer.closed
        assert json.loads(buffer.getvalue()) == {"slot": 0}


class TestObservation:
    def test_trace_defaults_to_none(self):
        observation = Observation(metrics=MetricsRegistry())
        assert observation.trace is None


class TestSlotRecordsAgainstScheduleGroundTruth:
    """The driver's trace must mirror the protocol's own slot schedule."""

    ARRIVALS = [5.0, 12.0, 47.0, 61.0, 61.5]
    SLOT_DURATION = 10.0
    HORIZON = 12
    WARMUP = 2

    def _traced_run(self):
        protocol = DHBProtocol(n_segments=12)
        sink = MemoryTraceSink()
        sim = SlottedSimulation(
            protocol,
            slot_duration=self.SLOT_DURATION,
            horizon_slots=self.HORIZON,
            warmup_slots=self.WARMUP,
            trace=sink,
            trace_context={"protocol": "dhb"},
        )
        sim.run(self.ARRIVALS)
        return sink.records

    def _ground_truth(self):
        """Replay the identical protocol by hand, reading its SlotSchedule."""
        protocol = DHBProtocol(n_segments=12)
        expected = []
        index = 0
        for slot in range(self.HORIZON):
            # Mirror the driver: the slot is read *after* delivering its own
            # arrivals (which only ever schedule into slots >= slot + 1).
            streams = protocol.slot_load(slot)
            arrivals = 0
            slot_end = (slot + 1) * self.SLOT_DURATION
            while index < len(self.ARRIVALS) and self.ARRIVALS[index] < slot_end:
                protocol.handle_request(slot)
                arrivals += 1
                index += 1
            assert protocol.slot_load(slot) == streams  # invariant the trace relies on
            expected.append(
                {
                    "protocol": "dhb",
                    "kind": "slot",
                    "slot": slot,
                    "streams": streams,
                    "weight": protocol.slot_weight(slot),
                    "instances": protocol.schedule.segments_in(slot),
                    "arrivals": arrivals,
                    "measured": slot >= self.WARMUP,
                }
            )
        return expected

    def test_one_record_per_slot_matching_schedule(self):
        records = self._traced_run()
        expected = self._ground_truth()
        assert len(records) == self.HORIZON
        assert records == expected

    def test_streams_count_the_scheduled_instances(self):
        for record in self._traced_run():
            assert record["streams"] == len(record["instances"])

    def test_arrivals_sum_to_admitted_requests(self):
        records = self._traced_run()
        assert sum(record["arrivals"] for record in records) == len(self.ARRIVALS)

    def test_warmup_slots_marked_unmeasured(self):
        records = self._traced_run()
        assert [r["measured"] for r in records[: self.WARMUP]] == [False] * self.WARMUP
        assert all(r["measured"] for r in records[self.WARMUP :])
