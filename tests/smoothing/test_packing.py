"""Tests for repro.smoothing.packing."""

import pytest

from repro.errors import SmoothingError
from repro.smoothing.packing import pack_video
from repro.smoothing.workahead import minimum_workahead_rate
from repro.video.model import CBRVideo
from repro.video.vbr import VBRVideo


def test_cbr_packs_into_playout_segments():
    video = CBRVideo(duration=100.0, rate=1.0)
    packed = pack_video(video, slot_duration=10.0)
    # At the minimum rate the video exactly fills the (D + d) reception
    # window: 100 bytes / (0.9090.. * 10 per chunk) = 11 chunks.
    assert packed.n_segments == 11
    assert packed.rate == pytest.approx(minimum_workahead_rate(video, 10.0))


def test_segments_cover_all_bytes(tiny_vbr):
    packed = pack_video(tiny_vbr, slot_duration=3.0)
    assert packed.n_segments * packed.bytes_per_segment >= tiny_vbr.total_bytes - 1e-9
    assert (packed.n_segments - 1) * packed.bytes_per_segment < tiny_vbr.total_bytes


def test_first_byte_playout_times_monotone(tiny_vbr):
    packed = pack_video(tiny_vbr, slot_duration=2.0)
    times = packed.first_byte_playout_times
    assert times[0] == 0.0
    assert all(b >= a for a, b in zip(times, times[1:]))
    assert len(times) == packed.n_segments


def test_explicit_rate_respected(tiny_vbr):
    minimum = minimum_workahead_rate(tiny_vbr, 3.0)
    packed = pack_video(tiny_vbr, slot_duration=3.0, rate=minimum * 2)
    assert packed.rate == pytest.approx(minimum * 2)
    assert packed.n_segments <= pack_video(tiny_vbr, 3.0).n_segments


def test_rate_below_minimum_rejected(tiny_vbr):
    minimum = minimum_workahead_rate(tiny_vbr, 3.0)
    with pytest.raises(SmoothingError):
        pack_video(tiny_vbr, slot_duration=3.0, rate=minimum * 0.5)


def test_invalid_slot_duration(tiny_vbr):
    with pytest.raises(SmoothingError):
        pack_video(tiny_vbr, slot_duration=0.0)


def test_quiet_opening_defers_first_bytes():
    # Opening consumes little, so chunk 2 is not needed until late.
    video = VBRVideo([10.0] * 20 + [300.0] * 4)
    packed = pack_video(video, slot_duration=1.0)
    # Chunk 1 holds `rate` bytes, entirely inside the 200-byte quiet
    # opening, so chunk 2's first byte is needed only after rate/10 seconds.
    assert packed.rate < 200.0
    assert packed.first_byte_playout_times[1] == pytest.approx(packed.rate / 10.0)


def test_generic_video_fallback_bisection():
    # CBRVideo has no playout_time_for_bytes; exercises the bisection path.
    video = CBRVideo(duration=50.0, rate=4.0)
    packed = pack_video(video, slot_duration=5.0)
    for chunk_index, playout in enumerate(packed.first_byte_playout_times):
        expected = chunk_index * packed.bytes_per_segment / 4.0
        assert playout == pytest.approx(expected, abs=1e-6)
