"""Tests for repro.smoothing.workahead."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SmoothingError
from repro.smoothing.workahead import is_rate_feasible, minimum_workahead_rate
from repro.video.model import CBRVideo
from repro.video.vbr import VBRVideo


def test_cbr_with_delay_needs_less_than_consumption_rate():
    video = CBRVideo(duration=100.0, rate=1.0)
    rate = minimum_workahead_rate(video, startup_delay=10.0)
    assert rate == pytest.approx(100.0 / 110.0)


def test_cbr_without_delay_needs_full_rate():
    video = CBRVideo(duration=100.0, rate=2.0)
    assert minimum_workahead_rate(video, 0.0) == pytest.approx(2.0)


def test_front_loaded_video_binds_early():
    video = VBRVideo([100.0, 10.0, 10.0, 10.0])
    rate = minimum_workahead_rate(video, startup_delay=0.0)
    assert rate == pytest.approx(100.0)  # first second dominates


def test_back_loaded_video_binds_at_end():
    video = VBRVideo([10.0, 10.0, 10.0, 100.0])
    rate = minimum_workahead_rate(video, startup_delay=0.0)
    assert rate == pytest.approx(130.0 / 4.0)


def test_rate_never_below_long_run_requirement(tiny_vbr):
    delay = 2.0
    rate = minimum_workahead_rate(tiny_vbr, delay)
    assert rate >= tiny_vbr.total_bytes / (tiny_vbr.duration + delay) - 1e-9


def test_minimum_rate_is_feasible_and_tight(tiny_vbr):
    rate = minimum_workahead_rate(tiny_vbr, 2.0)
    assert is_rate_feasible(tiny_vbr, rate, 2.0)
    assert not is_rate_feasible(tiny_vbr, rate * 0.99, 2.0)


def test_feasibility_definition(tiny_vbr):
    rate = minimum_workahead_rate(tiny_vbr, 1.0)
    # Explicit check: cumulative transmission covers cumulative consumption.
    for t in np.linspace(0.0, tiny_vbr.duration, 200):
        assert rate * (t + 1.0) >= tiny_vbr.cumulative_bytes(t) - 1e-6


def test_zero_rate_infeasible(tiny_vbr):
    assert not is_rate_feasible(tiny_vbr, 0.0, 1.0)


def test_negative_delay_rejected(tiny_vbr):
    with pytest.raises(SmoothingError):
        minimum_workahead_rate(tiny_vbr, -1.0)


@given(
    trace=st.lists(st.floats(1.0, 1000.0), min_size=2, max_size=60),
    delay=st.floats(0.0, 30.0),
)
def test_minimum_rate_dominates_consumption_everywhere(trace, delay):
    video = VBRVideo(trace)
    rate = minimum_workahead_rate(video, delay)
    for second in range(1, len(trace) + 1):
        assert rate * (second + delay) >= video.cumulative_bytes(second) - 1e-6


def test_larger_delay_never_needs_more_rate(tiny_vbr):
    rates = [minimum_workahead_rate(tiny_vbr, d) for d in [0.0, 1.0, 3.0, 10.0]]
    assert all(a >= b - 1e-12 for a, b in zip(rates, rates[1:]))
