"""Tests for repro.smoothing.deadlines."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SmoothingError
from repro.smoothing.deadlines import (
    chunk_deadline_slots,
    delay_gained,
    maximum_periods,
    uniform_periods,
)
from repro.smoothing.packing import pack_video
from repro.video.model import CBRVideo
from repro.video.vbr import VBRVideo


def test_cbr_without_workahead_gives_uniform_periods():
    video = CBRVideo(duration=100.0, rate=1.0)
    packed = pack_video(video, slot_duration=10.0, rate=1.0)
    assert maximum_periods(packed) == list(range(1, packed.n_segments + 1))


def test_first_deadline_is_always_one(tiny_vbr):
    packed = pack_video(tiny_vbr, slot_duration=3.0)
    assert chunk_deadline_slots(packed)[0] == 1


def test_deadlines_monotone(tiny_vbr):
    packed = pack_video(tiny_vbr, slot_duration=2.0)
    deadlines = chunk_deadline_slots(packed)
    assert all(b >= a for a, b in zip(deadlines, deadlines[1:]))


def test_quiet_opening_relaxes_early_periods():
    # First minute nearly idle: segment 2 can be delayed well beyond slot 2.
    video = VBRVideo([5.0] * 4 + [300.0] * 8)
    packed = pack_video(video, slot_duration=1.0)
    periods = maximum_periods(packed)
    assert periods[1] > 2


def test_deadline_feasibility_against_consumption(tiny_vbr):
    # Receiving chunk j at the end of relative slot T[j] must precede the
    # playout time of its first byte (plus the one-slot startup offset).
    d = 2.0
    packed = pack_video(tiny_vbr, slot_duration=d)
    for index, period in enumerate(maximum_periods(packed)):
        first_byte_needed = packed.first_byte_playout_times[index] + d
        assert period * d <= first_byte_needed + 1e-6


def test_delay_gained(tiny_vbr):
    packed = pack_video(tiny_vbr, slot_duration=2.0)
    gains = delay_gained(packed)
    periods = maximum_periods(packed)
    assert gains == [t - (j + 1) for j, t in enumerate(periods)]


def test_uniform_periods_helper():
    assert uniform_periods(5) == [1, 2, 3, 4, 5]
    with pytest.raises(SmoothingError):
        uniform_periods(0)


@given(
    trace=st.lists(st.floats(1.0, 500.0), min_size=4, max_size=40),
    d=st.sampled_from([1.0, 2.0, 3.0]),
)
def test_periods_bounded_by_workahead_property(trace, d):
    """T[j] >= j - 1 always: work-ahead feasibility limits how early a
    chunk's data can be needed (see the derivation in the module docs)."""
    video = VBRVideo(trace)
    packed = pack_video(video, slot_duration=d)
    for index, period in enumerate(maximum_periods(packed)):
        assert period >= max(1, index)  # index = (j-1), so period >= j-1
