"""Tests for repro.smoothing.optimal — the funnel smoothing algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SmoothingError
from repro.smoothing.optimal import optimal_smoothing_schedule
from repro.smoothing.workahead import minimum_workahead_rate
from repro.video.vbr import VBRVideo


def _check_feasible(video, schedule, buffer_bytes, delay):
    """The plan must stay within [L, U] at every sampled second."""
    horizon = video.duration + delay
    for t in np.arange(0.0, np.floor(horizon) + 1.0):
        t = min(t, horizon)
        sent = schedule.cumulative_at(t)
        consumed = video.cumulative_bytes(t - delay)
        assert sent >= consumed - 1e-6, f"underflow at t={t}"
        assert sent <= consumed + buffer_bytes + 1e-6, f"overflow at t={t}"
    assert schedule.cumulative_at(horizon) == pytest.approx(
        video.total_bytes, rel=1e-9
    )


def test_cbr_like_trace_smooths_to_constant():
    video = VBRVideo([100.0] * 20)
    schedule = optimal_smoothing_schedule(video, buffer_bytes=1e9, startup_delay=5.0)
    assert len(schedule.pieces) == 1
    assert schedule.peak_rate == pytest.approx(2000.0 / 25.0)


def test_unlimited_buffer_matches_workahead_minimum(tiny_vbr):
    delay = 2.0
    schedule = optimal_smoothing_schedule(tiny_vbr, buffer_bytes=1e12, startup_delay=delay)
    minimum = minimum_workahead_rate(tiny_vbr, delay)
    assert schedule.peak_rate == pytest.approx(minimum, rel=1e-6)


def test_feasibility(tiny_vbr):
    buffer_bytes = 500.0
    schedule = optimal_smoothing_schedule(tiny_vbr, buffer_bytes, startup_delay=1.0)
    _check_feasible(tiny_vbr, schedule, buffer_bytes, 1.0)


def test_small_buffer_raises_peak(tiny_vbr):
    big = optimal_smoothing_schedule(tiny_vbr, 1e12, 1.0).peak_rate
    small = optimal_smoothing_schedule(tiny_vbr, 300.0, 1.0).peak_rate
    assert small >= big - 1e-9


def test_peak_never_exceeds_trace_peak(tiny_vbr):
    schedule = optimal_smoothing_schedule(
        tiny_vbr, buffer_bytes=tiny_vbr.peak_bandwidth(), startup_delay=0.0
    )
    assert schedule.peak_rate <= tiny_vbr.peak_bandwidth() + 1e-9


def test_pieces_are_contiguous(tiny_vbr):
    schedule = optimal_smoothing_schedule(tiny_vbr, 400.0, 1.0)
    for a, b in zip(schedule.pieces, schedule.pieces[1:]):
        assert a.end == pytest.approx(b.start)
    assert schedule.pieces[0].start == 0.0


def test_total_bytes_delivered(tiny_vbr):
    schedule = optimal_smoothing_schedule(tiny_vbr, 600.0, 2.0)
    assert schedule.total_bytes == pytest.approx(tiny_vbr.total_bytes, rel=1e-9)


def test_buffer_below_burst_rejected():
    video = VBRVideo([10.0, 500.0, 10.0])
    with pytest.raises(SmoothingError):
        optimal_smoothing_schedule(video, buffer_bytes=100.0, startup_delay=1.0)


def test_invalid_parameters(tiny_vbr):
    with pytest.raises(SmoothingError):
        optimal_smoothing_schedule(tiny_vbr, 0.0, 1.0)
    with pytest.raises(SmoothingError):
        optimal_smoothing_schedule(tiny_vbr, 100.0, -1.0)


@settings(max_examples=40, deadline=None)
@given(
    trace=st.lists(st.floats(10.0, 300.0), min_size=3, max_size=40),
    buffer_factor=st.floats(1.0, 10.0),
    delay=st.sampled_from([0.0, 1.0, 4.0]),
)
def test_feasibility_property(trace, buffer_factor, delay):
    video = VBRVideo(trace)
    buffer_bytes = buffer_factor * video.peak_bandwidth()
    schedule = optimal_smoothing_schedule(video, buffer_bytes, delay)
    _check_feasible(video, schedule, buffer_bytes, delay)
