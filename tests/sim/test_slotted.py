"""Tests for repro.sim.slotted."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.slotted import SlottedModel, SlottedSimulation


class CountingProtocol(SlottedModel):
    """Transmits one instance per admitted request, in the next slot."""

    def __init__(self):
        self.loads = {}
        self.requests = []

    def handle_request(self, slot):
        self.requests.append(slot)
        self.loads[slot + 1] = self.loads.get(slot + 1, 0) + 1

    def slot_load(self, slot):
        return self.loads.get(slot, 0)


class ConstantProtocol(SlottedModel):
    """A fixed protocol: constant load, ignores requests."""

    def __init__(self, k):
        self.k = k

    def handle_request(self, slot):
        pass

    def slot_load(self, slot):
        return self.k


def test_requests_mapped_to_their_arrival_slot():
    protocol = CountingProtocol()
    sim = SlottedSimulation(protocol, slot_duration=10.0, horizon_slots=10)
    sim.run([5.0, 15.0, 16.0, 95.0])
    assert protocol.requests == [0, 1, 1, 9]


def test_arrivals_beyond_horizon_ignored():
    protocol = CountingProtocol()
    sim = SlottedSimulation(protocol, slot_duration=10.0, horizon_slots=3)
    result = sim.run([5.0, 100.0, 200.0])
    assert protocol.requests == [0]
    assert result.n_requests == 1


def test_mean_and_max_loads():
    protocol = ConstantProtocol(4)
    sim = SlottedSimulation(protocol, slot_duration=1.0, horizon_slots=100)
    result = sim.run([])
    assert result.mean_streams == pytest.approx(4.0)
    assert result.max_streams == 4
    assert result.slots_measured == 100


def test_warmup_slots_excluded():
    class RampProtocol(ConstantProtocol):
        def slot_load(self, slot):
            return 100 if slot < 10 else 1

    sim = SlottedSimulation(
        RampProtocol(0), slot_duration=1.0, horizon_slots=100, warmup_slots=10
    )
    result = sim.run([])
    assert result.mean_streams == pytest.approx(1.0)
    assert result.max_streams == 1


def test_waiting_time_is_until_next_slot_boundary():
    protocol = CountingProtocol()
    sim = SlottedSimulation(protocol, slot_duration=10.0, horizon_slots=10)
    result = sim.run([3.0, 18.0])
    # waits: 10-3=7 and 20-18=2
    assert result.mean_wait == pytest.approx(4.5)
    assert result.max_wait == pytest.approx(7.0)
    assert result.max_wait <= 10.0


def test_series_collection():
    protocol = ConstantProtocol(2)
    sim = SlottedSimulation(
        protocol, slot_duration=1.0, horizon_slots=5, keep_series=True
    )
    result = sim.run([])
    assert result.series == [2, 2, 2, 2, 2]


def test_scaled_results():
    protocol = ConstantProtocol(3)
    sim = SlottedSimulation(protocol, slot_duration=1.0, horizon_slots=10)
    result = sim.run([])
    assert result.scaled_mean(100.0) == pytest.approx(300.0)
    assert result.scaled_max(100.0) == pytest.approx(300.0)


def test_default_slot_weight_equals_load():
    protocol = ConstantProtocol(3)
    sim = SlottedSimulation(protocol, slot_duration=1.0, horizon_slots=10)
    result = sim.run([])
    assert result.mean_weight == pytest.approx(3.0)
    assert result.max_weight == pytest.approx(3.0)


def test_invalid_configuration_rejected():
    with pytest.raises(ConfigurationError):
        SlottedSimulation(ConstantProtocol(1), slot_duration=0.0, horizon_slots=10)
    with pytest.raises(ConfigurationError):
        SlottedSimulation(
            ConstantProtocol(1), slot_duration=1.0, horizon_slots=5, warmup_slots=5
        )


def test_requests_during_warmup_not_counted_in_waits():
    protocol = CountingProtocol()
    sim = SlottedSimulation(
        protocol, slot_duration=10.0, horizon_slots=10, warmup_slots=5
    )
    result = sim.run([3.0, 72.0])
    assert result.n_requests == 1  # only the post-warmup request measured
    assert protocol.requests == [0, 7]  # but both were admitted
