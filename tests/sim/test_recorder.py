"""Tests for repro.sim.recorder."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.recorder import SlotLoadRecorder, TimeWeightedRecorder


class TestSlotLoadRecorder:
    def test_basic_stats(self):
        rec = SlotLoadRecorder()
        for slot, load in enumerate([1, 2, 3]):
            rec.record(slot, load)
        assert rec.mean_load == pytest.approx(2.0)
        assert rec.max_load == 3
        assert rec.slots_measured == 3

    def test_warmup_discarded(self):
        rec = SlotLoadRecorder(warmup_slots=2)
        rec.record(0, 100)
        rec.record(1, 100)
        rec.record(2, 1)
        rec.record(3, 3)
        assert rec.mean_load == pytest.approx(2.0)
        assert rec.max_load == 3

    def test_series_kept_only_when_asked(self):
        rec = SlotLoadRecorder(keep_series=True)
        rec.record(0, 5)
        assert rec.series == [5]
        rec2 = SlotLoadRecorder()
        rec2.record(0, 5)
        assert rec2.series == []

    def test_negative_load_rejected(self):
        rec = SlotLoadRecorder()
        with pytest.raises(SimulationError):
            rec.record(0, -1)

    def test_negative_warmup_rejected(self):
        with pytest.raises(SimulationError):
            SlotLoadRecorder(warmup_slots=-1)

    def test_empty_recorder(self):
        rec = SlotLoadRecorder()
        assert rec.mean_load == 0.0
        assert rec.max_load == 0.0

    def test_shared_registry_keeps_per_run_stats_private(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        first = SlotLoadRecorder(registry=registry)
        first.record(0, 10)
        first.finish()
        second = SlotLoadRecorder(registry=registry)
        second.record(0, 2)
        # The second run's summary must not see the first run's samples.
        assert second.slots_measured == 1
        assert second.mean_load == pytest.approx(2.0)
        assert second.max_load == 2.0
        second.finish()
        # ...while the registry histogram pools both runs.
        pooled = registry.histogram("sim.slot_load").stats
        assert pooled.count == 2
        assert pooled.mean == pytest.approx(6.0)

    def test_finish_is_idempotent(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        rec = SlotLoadRecorder(registry=registry)
        rec.record(0, 4)
        rec.finish()
        rec.finish()
        assert registry.histogram("sim.slot_load").stats.count == 1

    def test_finish_without_registry_is_a_noop(self):
        rec = SlotLoadRecorder()
        rec.record(0, 4)
        rec.finish()
        assert rec.mean_load == pytest.approx(4.0)


class TestTimeWeightedRecorder:
    def test_single_interval(self):
        rec = TimeWeightedRecorder(0.0, 10.0)
        rec.add_interval(2.0, 7.0)
        assert rec.mean_concurrency() == pytest.approx(0.5)
        assert rec.max_concurrency() == 1

    def test_overlap_counted(self):
        rec = TimeWeightedRecorder(0.0, 10.0)
        rec.add_intervals([(0.0, 5.0), (2.0, 8.0), (4.0, 6.0)])
        assert rec.max_concurrency() == 3
        assert rec.mean_concurrency() == pytest.approx((5 + 6 + 2) / 10.0)

    def test_clipping_to_window(self):
        rec = TimeWeightedRecorder(10.0, 20.0)
        rec.add_interval(0.0, 15.0)   # clipped to [10, 15)
        rec.add_interval(18.0, 30.0)  # clipped to [18, 20)
        assert rec.total_busy_time() == pytest.approx(7.0)

    def test_interval_outside_window_ignored(self):
        rec = TimeWeightedRecorder(10.0, 20.0)
        rec.add_interval(0.0, 5.0)
        rec.add_interval(25.0, 30.0)
        assert rec.mean_concurrency() == 0.0
        assert rec.max_concurrency() == 0

    def test_back_to_back_intervals_not_double_counted(self):
        rec = TimeWeightedRecorder(0.0, 10.0)
        rec.add_interval(0.0, 5.0)
        rec.add_interval(5.0, 10.0)
        assert rec.max_concurrency() == 1

    def test_reversed_interval_rejected(self):
        rec = TimeWeightedRecorder(0.0, 10.0)
        with pytest.raises(SimulationError):
            rec.add_interval(5.0, 4.0)

    def test_empty_window_rejected(self):
        with pytest.raises(SimulationError):
            TimeWeightedRecorder(5.0, 5.0)

    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)).map(
                lambda p: (min(p), max(p))
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_mean_never_exceeds_max(self, intervals):
        rec = TimeWeightedRecorder(0.0, 100.0)
        rec.add_intervals(intervals)
        assert rec.mean_concurrency() <= rec.max_concurrency() + 1e-12
