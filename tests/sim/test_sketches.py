"""Tests for repro.sim.sketches."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.sketches import BinnedQuantileSketch, P2Quantile


class TestBinnedQuantileSketch:
    def test_rejects_bad_parameters(self):
        with pytest.raises(SimulationError):
            BinnedQuantileSketch(0.0)
        with pytest.raises(SimulationError):
            BinnedQuantileSketch(-1.0)
        with pytest.raises(SimulationError):
            BinnedQuantileSketch(10.0, n_bins=0)

    def test_empty_sketch_reports_zero(self):
        sketch = BinnedQuantileSketch(10.0)
        assert sketch.count == 0
        assert sketch.quantile(0.5) == 0.0

    def test_quantile_range_checked(self):
        sketch = BinnedQuantileSketch(10.0)
        with pytest.raises(SimulationError):
            sketch.quantile(1.5)
        with pytest.raises(SimulationError):
            sketch.quantile(-0.1)

    def test_out_of_range_values_clamp(self):
        sketch = BinnedQuantileSketch(10.0, n_bins=10)
        sketch.add(-5.0)
        sketch.add(25.0)
        sketch.add(10.0)  # exactly upper clamps into the last bin
        assert sketch.count == 3
        assert sketch.quantile(0.0) == pytest.approx(1.0)  # first bin edge
        assert sketch.quantile(1.0) == 10.0

    def test_quantile_is_bin_upper_edge(self):
        sketch = BinnedQuantileSketch(10.0, n_bins=10)
        for value in [0.5, 1.5, 2.5, 3.5]:
            sketch.add(value)
        # Median of 4 observations sits in the second bin -> edge 2.0.
        assert sketch.quantile(0.5) == pytest.approx(2.0)
        assert sketch.quantile(1.0) == pytest.approx(4.0)

    @given(
        st.lists(
            st.floats(min_value=-2.0, max_value=15.0, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    def test_scalar_and_array_feeding_agree_exactly(self, values):
        one_by_one = BinnedQuantileSketch(10.0, n_bins=64)
        batched = BinnedQuantileSketch(10.0, n_bins=64)
        for value in values:
            one_by_one.add(value)
        batched.add_array(np.asarray(values, dtype=np.float64))
        assert one_by_one.count == batched.count
        assert np.array_equal(one_by_one._counts, batched._counts)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert one_by_one.quantile(q) == batched.quantile(q)

    def test_add_array_empty_is_noop(self):
        sketch = BinnedQuantileSketch(10.0)
        sketch.add_array(np.array([], dtype=np.float64))
        assert sketch.count == 0

    def test_merge_requires_matching_geometry(self):
        sketch = BinnedQuantileSketch(10.0, n_bins=16)
        with pytest.raises(SimulationError):
            sketch.merge(BinnedQuantileSketch(5.0, n_bins=16))
        with pytest.raises(SimulationError):
            sketch.merge(BinnedQuantileSketch(10.0, n_bins=32))

    def test_merge_equals_union_of_streams(self):
        left = BinnedQuantileSketch(10.0, n_bins=32)
        right = BinnedQuantileSketch(10.0, n_bins=32)
        union = BinnedQuantileSketch(10.0, n_bins=32)
        for value in [1.0, 2.0, 3.0]:
            left.add(value)
            union.add(value)
        for value in [7.0, 8.0]:
            right.add(value)
            union.add(value)
        left.merge(right)
        assert left.count == union.count
        assert np.array_equal(left._counts, union._counts)

    def test_dict_round_trip(self):
        sketch = BinnedQuantileSketch(7.0, n_bins=64)
        sketch.add_array(np.array([0.1, 3.3, 6.9, 12.0, -1.0]))
        rebuilt = BinnedQuantileSketch.from_dict(sketch.to_dict())
        assert rebuilt.count == sketch.count
        assert np.array_equal(rebuilt._counts, sketch._counts)
        assert rebuilt.quantile(0.5) == sketch.quantile(0.5)


class TestP2Quantile:
    def test_rejects_bad_quantile(self):
        with pytest.raises(SimulationError):
            P2Quantile(0.0)
        with pytest.raises(SimulationError):
            P2Quantile(1.0)

    def test_empty_estimate_is_zero(self):
        assert P2Quantile(0.5).value == 0.0

    def test_small_streams_use_exact_order_statistic(self):
        sketch = P2Quantile(0.5)
        for value in [5.0, 1.0, 3.0]:
            sketch.add(value)
        assert sketch.value == 3.0

    def test_median_of_uniform_stream(self):
        sketch = P2Quantile(0.5)
        rng = np.random.default_rng(11)
        for value in rng.uniform(0.0, 100.0, 5000):
            sketch.add(float(value))
        assert 45.0 < sketch.value < 55.0

    def test_p99_of_uniform_stream(self):
        sketch = P2Quantile(0.99)
        rng = np.random.default_rng(12)
        for value in rng.uniform(0.0, 100.0, 5000):
            sketch.add(float(value))
        assert 96.0 < sketch.value <= 100.0

    def test_constant_stream(self):
        sketch = P2Quantile(0.9)
        for _ in range(100):
            sketch.add(4.0)
        assert sketch.value == pytest.approx(4.0)
