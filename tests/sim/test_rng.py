"""Tests for repro.sim.rng."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams


def test_same_seed_same_stream():
    a = RandomStreams(1).get("arrivals").random(5)
    b = RandomStreams(1).get("arrivals").random(5)
    assert np.allclose(a, b)


def test_different_names_are_independent():
    streams = RandomStreams(1)
    a = streams.get("arrivals").random(100)
    b = streams.get("video").random(100)
    assert not np.allclose(a, b)


def test_different_seeds_differ():
    a = RandomStreams(1).get("arrivals").random(5)
    b = RandomStreams(2).get("arrivals").random(5)
    assert not np.allclose(a, b)


def test_stream_is_cached():
    streams = RandomStreams(3)
    assert streams.get("x") is streams.get("x")


def test_adding_a_stream_does_not_perturb_others():
    solo = RandomStreams(5)
    solo_draw = solo.get("arrivals").random(10)

    mixed = RandomStreams(5)
    mixed.get("completely-unrelated").random(10)
    mixed_draw = mixed.get("arrivals").random(10)
    assert np.allclose(solo_draw, mixed_draw)


def test_spawn_is_deterministic():
    a = RandomStreams(7).spawn("rep-1").get("x").random(3)
    b = RandomStreams(7).spawn("rep-1").get("x").random(3)
    c = RandomStreams(7).spawn("rep-2").get("x").random(3)
    assert np.allclose(a, b)
    assert not np.allclose(a, c)


def test_seed_property():
    assert RandomStreams(17).seed == 17


@pytest.mark.parametrize("bad", ["nope", 1.5, None])
def test_non_integer_seed_rejected(bad):
    with pytest.raises(ConfigurationError):
        RandomStreams(bad)


def test_empty_stream_name_rejected():
    with pytest.raises(ConfigurationError):
        RandomStreams(1).get("")
