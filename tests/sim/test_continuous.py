"""Tests for repro.sim.continuous."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.continuous import ContinuousSimulation, ReactiveModel


class FixedCostProtocol(ReactiveModel):
    """Every request costs one stream of a fixed length."""

    def __init__(self, stream_length, wait=0.0):
        self.stream_length = stream_length
        self.wait = wait

    def handle_request(self, time):
        return [(time, time + self.stream_length)]

    def startup_delay(self, time):
        return self.wait


class FlushingProtocol(ReactiveModel):
    """Emits a standing interval only at finish()."""

    def handle_request(self, time):
        return []

    def finish(self, horizon):
        return [(0.0, horizon)]


def test_mean_concurrency_matches_load():
    protocol = FixedCostProtocol(stream_length=10.0)
    sim = ContinuousSimulation(protocol, horizon=100.0)
    result = sim.run([0.0, 50.0])
    assert result.mean_streams == pytest.approx(20.0 / 100.0)
    assert result.max_streams == 1


def test_overlapping_streams_peak():
    protocol = FixedCostProtocol(stream_length=10.0)
    sim = ContinuousSimulation(protocol, horizon=100.0)
    result = sim.run([0.0, 1.0, 2.0])
    assert result.max_streams == 3


def test_warmup_clipping():
    protocol = FixedCostProtocol(stream_length=10.0)
    sim = ContinuousSimulation(protocol, horizon=100.0, warmup=50.0)
    result = sim.run([0.0, 45.0, 60.0])
    # first stream entirely in warmup; second half-clipped; third full
    assert result.mean_streams == pytest.approx((5.0 + 10.0) / 50.0)
    assert result.n_requests == 1  # only the post-warmup arrival measured


def test_waiting_time_recorded():
    protocol = FixedCostProtocol(stream_length=1.0, wait=3.0)
    sim = ContinuousSimulation(protocol, horizon=10.0)
    result = sim.run([1.0, 2.0])
    assert result.mean_wait == pytest.approx(3.0)
    assert result.max_wait == pytest.approx(3.0)


def test_arrivals_beyond_horizon_ignored():
    protocol = FixedCostProtocol(stream_length=1.0)
    sim = ContinuousSimulation(protocol, horizon=10.0)
    result = sim.run([1.0, 11.0])
    assert result.n_requests == 1


def test_finish_hook_flushes_standing_intervals():
    sim = ContinuousSimulation(FlushingProtocol(), horizon=10.0)
    result = sim.run([])
    assert result.mean_streams == pytest.approx(1.0)


def test_invalid_configuration():
    with pytest.raises(ConfigurationError):
        ContinuousSimulation(FixedCostProtocol(1.0), horizon=10.0, warmup=10.0)
    with pytest.raises(ConfigurationError):
        ContinuousSimulation(FixedCostProtocol(1.0), horizon=10.0, warmup=-1.0)
