"""Tests for repro.sim.engine and repro.sim.events."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import EventEngine
from repro.sim.events import Event


def test_events_fire_in_time_order():
    engine = EventEngine()
    fired = []
    engine.schedule(3.0, lambda: fired.append("c"))
    engine.schedule(1.0, lambda: fired.append("a"))
    engine.schedule(2.0, lambda: fired.append("b"))
    engine.run_until(10.0)
    assert fired == ["a", "b", "c"]


def test_simultaneous_events_fire_in_schedule_order():
    engine = EventEngine()
    fired = []
    for tag in "abcde":
        engine.schedule(1.0, lambda t=tag: fired.append(t))
    engine.run_until(1.0)
    assert fired == list("abcde")


def test_run_until_advances_clock_even_without_events():
    engine = EventEngine()
    engine.run_until(42.0)
    assert engine.now == 42.0


def test_events_beyond_horizon_stay_queued():
    engine = EventEngine()
    fired = []
    engine.schedule(5.0, lambda: fired.append("later"))
    engine.run_until(4.0)
    assert fired == []
    assert engine.pending == 1
    engine.run_until(5.0)
    assert fired == ["later"]


def test_scheduling_in_the_past_raises():
    engine = EventEngine()
    engine.run_until(10.0)
    with pytest.raises(SimulationError):
        engine.schedule(5.0, lambda: None)


def test_schedule_in_negative_delay_raises():
    engine = EventEngine()
    with pytest.raises(SimulationError):
        engine.schedule_in(-1.0, lambda: None)


def test_cancelled_event_is_skipped():
    engine = EventEngine()
    fired = []
    event = engine.schedule(1.0, lambda: fired.append("x"))
    event.cancel()
    engine.run_until(2.0)
    assert fired == []
    assert engine.events_fired == 0


def test_events_scheduled_during_execution_run_within_horizon():
    engine = EventEngine()
    fired = []

    def chain():
        fired.append("first")
        engine.schedule_in(1.0, lambda: fired.append("second"))

    engine.schedule(1.0, chain)
    engine.run_until(3.0)
    assert fired == ["first", "second"]


def test_run_to_exhaustion_drains_queue():
    engine = EventEngine()
    count = []
    for i in range(10):
        engine.schedule(float(i), lambda: count.append(1))
    engine.run_to_exhaustion()
    assert len(count) == 10


def test_run_to_exhaustion_bounds_runaway():
    engine = EventEngine()

    def rearm():
        engine.schedule_in(1.0, rearm)

    engine.schedule(0.0, rearm)
    with pytest.raises(SimulationError):
        engine.run_to_exhaustion(max_events=100)


def test_horizon_before_now_raises():
    engine = EventEngine(start_time=10.0)
    with pytest.raises(SimulationError):
        engine.run_until(5.0)


def test_peek_time_skips_cancelled():
    engine = EventEngine()
    first = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    first.cancel()
    assert engine.peek_time() == 2.0


def test_event_ordering_dataclass():
    a = Event(1.0, lambda: None)
    b = Event(2.0, lambda: None)
    assert a < b
    earlier_seq = Event(3.0, lambda: None)
    later_seq = Event(3.0, lambda: None)
    assert earlier_seq < later_seq
