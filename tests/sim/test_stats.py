"""Tests for repro.sim.stats."""


import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.stats import OnlineStats, TimeWeightedStats, batch_means_ci


class TestOnlineStats:
    def test_empty(self):
        s = OnlineStats()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_single_value(self):
        s = OnlineStats()
        s.add(5.0)
        assert s.mean == 5.0
        assert s.variance == 0.0
        assert s.minimum == 5.0
        assert s.maximum == 5.0

    def test_known_values(self):
        s = OnlineStats()
        s.add_many([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert s.mean == pytest.approx(5.0)
        assert s.stddev == pytest.approx(np.std([2, 4, 4, 4, 5, 5, 7, 9], ddof=1))

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
    def test_matches_numpy(self, values):
        s = OnlineStats()
        s.add_many(values)
        assert s.mean == pytest.approx(float(np.mean(values)), rel=1e-9, abs=1e-6)
        assert s.variance == pytest.approx(
            float(np.var(values, ddof=1)), rel=1e-7, abs=1e-4
        )
        assert s.minimum == min(values)
        assert s.maximum == max(values)


class TestTimeWeightedStats:
    def test_constant_signal(self):
        s = TimeWeightedStats(0.0, 3.0)
        s.finish(10.0)
        assert s.mean == pytest.approx(3.0)
        assert s.maximum == 3.0

    def test_step_signal(self):
        s = TimeWeightedStats(0.0, 0.0)
        s.update(10.0, 2.0)
        s.update(30.0, 0.0)
        s.finish(40.0)
        assert s.mean == pytest.approx(1.0)
        assert s.maximum == 2.0

    def test_add_delta(self):
        s = TimeWeightedStats(0.0, 0.0)
        s.add_delta(1.0, +2.0)
        s.add_delta(2.0, +3.0)
        s.add_delta(3.0, -5.0)
        assert s.level == 0.0
        assert s.maximum == 5.0

    def test_backwards_time_raises(self):
        s = TimeWeightedStats(10.0, 0.0)
        with pytest.raises(SimulationError):
            s.update(5.0, 1.0)

    def test_zero_duration_mean_is_zero(self):
        s = TimeWeightedStats(0.0, 7.0)
        assert s.mean == 0.0


class TestBatchMeans:
    def test_constant_series(self):
        mean, half_width = batch_means_ci([3.0] * 100)
        assert mean == 3.0
        assert half_width == 0.0

    def test_mean_matches_sample_mean_when_batches_divide(self):
        values = list(range(100))
        mean, _ = batch_means_ci(values, n_batches=10)
        assert mean == pytest.approx(np.mean(values))

    def test_iid_noise_ci_covers_truth(self):
        rng = np.random.default_rng(0)
        values = rng.normal(10.0, 2.0, size=2000)
        mean, half_width = batch_means_ci(list(values), n_batches=20)
        assert abs(mean - 10.0) < 3 * half_width + 1e-9
        assert half_width > 0

    def test_too_few_observations(self):
        with pytest.raises(SimulationError):
            batch_means_ci([1.0, 2.0], n_batches=10)

    def test_too_few_batches(self):
        with pytest.raises(SimulationError):
            batch_means_ci([1.0] * 100, n_batches=1)
