"""Columnar slotted path: batched admission == scalar, bit for bit.

Two layers of equivalence guard the hot path:

* protocol level — ``handle_batch(slot, count)`` must leave every protocol
  in exactly the state ``count`` repeated ``handle_request(slot)`` calls
  produce (hypothesis property over random admission sequences);
* driver level — ``SlottedSimulation`` with ``columnar=True`` must return
  the exact result of the scalar per-request loop on the same trace.
"""

import ast
import importlib.util
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dhb import DHBProtocol
from repro.errors import SimulationError
from repro.obs.trace import MemoryTraceSink
from repro.protocols.dnpb import DynamicPagodaProtocol
from repro.protocols.fb import FastBroadcasting
from repro.protocols.ud import UniversalDistributionProtocol
from repro.runtime.seeds import arrival_trace
from repro.sim.slotted import SlottedModel, SlottedSimulation

N_SEGMENTS = 20

PROTOCOL_FACTORIES = {
    "dhb": lambda: DHBProtocol(n_segments=N_SEGMENTS),
    "ud": lambda: UniversalDistributionProtocol(n_segments=N_SEGMENTS),
    "dnpb": lambda: DynamicPagodaProtocol(n_segments=N_SEGMENTS),
}


class LoopProtocol(SlottedModel):
    """A protocol with no batched override: exercises the default loop."""

    def __init__(self):
        self.loads = {}
        self.calls = []

    def handle_request(self, slot):
        self.calls.append(slot)
        self.loads[slot + 1] = self.loads.get(slot + 1, 0) + 1

    def slot_load(self, slot):
        return self.loads.get(slot, 0)


def protocol_state(protocol):
    """Observable protocol state: admissions plus per-slot loads."""
    max_slot = 200 + N_SEGMENTS + 2
    return (
        protocol.requests_admitted,
        [protocol.slot_load(slot) for slot in range(max_slot)],
        [protocol.slot_instances(slot) for slot in range(max_slot)],
    )


# Random admission sequences: slots non-decreasing (the driver's delivery
# order), batch sizes 1..8, slots bounded so state comparison stays cheap.
admission_sequences = st.lists(
    st.tuples(st.integers(min_value=0, max_value=6), st.integers(1, 8)),
    min_size=1,
    max_size=12,
)


@pytest.mark.parametrize("name", sorted(PROTOCOL_FACTORIES))
@settings(max_examples=25, deadline=None)
@given(deltas=admission_sequences)
def test_handle_batch_matches_repeated_handle_request(name, deltas):
    factory = PROTOCOL_FACTORIES[name]
    batched = factory()
    scalar = factory()
    slot = 0
    for delta, count in deltas:
        slot += delta
        batched.handle_batch(slot, count)
        for _ in range(count):
            scalar.handle_request(slot)
    assert protocol_state(batched) == protocol_state(scalar)


def test_default_handle_batch_loops_over_handle_request():
    protocol = LoopProtocol()
    protocol.handle_batch(3, 4)
    assert protocol.calls == [3, 3, 3, 3]


def run_pair(make_protocol, arrivals, d=10.0, horizon=60, warmup=6):
    columnar = SlottedSimulation(
        make_protocol(), d, horizon, warmup, keep_series=True
    ).run(arrivals)
    scalar = SlottedSimulation(
        make_protocol(), d, horizon, warmup, keep_series=True, columnar=False
    ).run(arrivals)
    return columnar, scalar


def assert_identical(columnar, scalar):
    assert columnar.columnar is True
    assert scalar.columnar is False
    for field_name in (
        "slot_duration",
        "slots_measured",
        "mean_streams",
        "max_streams",
        "n_requests",
        "mean_wait",
        "max_wait",
        "mean_weight",
        "max_weight",
        "series",
        "wait_p50",
        "wait_p99",
    ):
        assert getattr(columnar, field_name) == getattr(scalar, field_name), field_name


@pytest.mark.parametrize("name", sorted(PROTOCOL_FACTORIES))
def test_driver_paths_agree_on_poisson_traces(name):
    for seed in (1, 2, 3):
        arrivals = arrival_trace(seed, workload=1800.0, horizon_hours=1.0)
        arrivals = arrivals[arrivals < 600.0]
        columnar, scalar = run_pair(PROTOCOL_FACTORIES[name], arrivals)
        assert_identical(columnar, scalar)


def test_driver_paths_agree_for_default_loop_protocol():
    arrivals = arrival_trace(9, workload=3600.0, horizon_hours=1.0)
    columnar, scalar = run_pair(LoopProtocol, arrivals, horizon=120)
    assert_identical(columnar, scalar)


def test_fixed_protocol_batches_to_constant_load():
    arrivals = arrival_trace(5, workload=720.0, horizon_hours=1.0)
    columnar, scalar = run_pair(
        lambda: FastBroadcasting(n_segments=N_SEGMENTS), arrivals
    )
    assert_identical(columnar, scalar)


def test_negative_arrivals_ignored_on_both_paths():
    arrivals = np.array([-25.0, -0.5, 3.0, 14.0, 95.0])
    columnar, scalar = run_pair(
        lambda: DHBProtocol(n_segments=5), arrivals, warmup=0
    )
    assert_identical(columnar, scalar)
    assert columnar.n_requests == 3  # the two pre-epoch arrivals are dropped


def test_trace_sink_forces_the_scalar_path():
    arrivals = np.array([3.0, 14.0, 25.0])
    sink = MemoryTraceSink()
    result = SlottedSimulation(
        DHBProtocol(n_segments=5), 10.0, 10, trace=sink
    ).run(arrivals)
    assert result.columnar is False
    assert len(sink.records) == 10  # one record per slot: trace intact


def test_generic_sequences_take_the_scalar_path():
    result = SlottedSimulation(DHBProtocol(n_segments=5), 10.0, 10).run(
        [3.0, 14.0, 25.0]
    )
    assert result.columnar is False


def test_columnar_false_forces_the_scalar_path():
    arrivals = np.array([3.0, 14.0])
    result = SlottedSimulation(
        DHBProtocol(n_segments=5), 10.0, 10, columnar=False
    ).run(arrivals)
    assert result.columnar is False


def test_unsorted_numpy_trace_rejected_upfront():
    protocol = DHBProtocol(n_segments=5)
    sim = SlottedSimulation(protocol, 10.0, 10)
    with pytest.raises(SimulationError):
        sim.run(np.array([50.0, 3.0]))
    # Rejected before any delivery: the upfront check runs pre-loop.
    assert protocol.requests_admitted == 0


def test_unsorted_generic_sequence_rejected_incrementally():
    with pytest.raises(SimulationError):
        SlottedSimulation(DHBProtocol(n_segments=5), 10.0, 10).run([50.0, 3.0])


# -- CH100: the columnar branch must never fall back to per-request loops --

_LINT = pathlib.Path(__file__).resolve().parents[2] / "tools" / "lint.py"
_SLOTTED = (
    pathlib.Path(__file__).resolve().parents[2]
    / "src" / "repro" / "sim" / "slotted.py"
)


def load_lint():
    spec = importlib.util.spec_from_file_location("repro_lint", _LINT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_columnar_branch_has_no_per_request_calls():
    lint = load_lint()
    tree = ast.parse(_SLOTTED.read_text(), filename=str(_SLOTTED))
    assert lint._columnar_guard(_SLOTTED, tree) == []


def test_columnar_guard_flags_per_request_loops(tmp_path):
    lint = load_lint()
    offender = tmp_path / "repro" / "sim" / "slotted.py"
    offender.parent.mkdir(parents=True)
    offender.write_text(
        "class Sim:\n"
        "    def _run_columnar(self, arrivals):\n"
        "        for t in arrivals:\n"
        "            self.protocol.handle_request(0)\n"
    )
    tree = ast.parse(offender.read_text())
    findings = lint._columnar_guard(offender, tree)
    assert [(line, code) for line, code, _ in findings] == [(4, "CH100")]
