"""Benchmark + regeneration of Figure 8: maximum bandwidth vs arrival rate.

Asserts the paper's claims: NPB has the smallest maximum bandwidth, DHB the
highest, and "the difference between these two protocols never exceeds twice
the video consumption rate".
"""

from repro.analysis.metrics import series_by_name
from repro.experiments.fig8 import report_fig8, run_fig8

NPB_STREAMS = 6.0  # pagoda allocation for 99 segments


def test_fig8_maximum_bandwidth(benchmark, bench_config, results_dir):
    series = benchmark.pedantic(
        lambda: run_fig8(bench_config), rounds=1, iterations=1
    )
    text = report_fig8(series)
    (results_dir / "fig8.txt").write_text(text + "\n")
    print("\n" + text)

    indexed = series_by_name(series)
    ud = indexed["UD Protocol"]
    dhb = indexed["DHB Protocol"]
    npb = indexed["New Pagoda Broadcasting"]

    # NPB's max equals its constant allocation everywhere.
    assert all(m == NPB_STREAMS for m in npb.maxima)

    # DHB's peak never exceeds NPB's by more than two streams — at any rate.
    for dhb_max in dhb.maxima:
        assert dhb_max - NPB_STREAMS <= 2.0

    # Loaded regime ordering: NPB <= UD <= DHB.
    for i, rate in enumerate(dhb.rates):
        if rate < 50.0:
            continue
        assert npb.maxima[i] <= ud.maxima[i] <= dhb.maxima[i]

    # UD's peak saturates at FB's seven streams.
    assert ud.maxima[-1] == 7.0
