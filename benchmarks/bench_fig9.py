"""Benchmark + regeneration of Figure 9: compressed video, UD vs DHB-a..d.

Runs the Section 4 pipeline on the Matrix-calibrated synthetic trace:
derives all four DHB configurations, simulates them with UD over the full
rate grid, writes the MB/s series table, and asserts the paper's ordering
and its per-step narrative.
"""

import pytest

from repro.core.variants import make_all_variants
from repro.experiments.fig9 import FIG9_MAX_WAIT, report_fig9, run_fig9
from repro.units import KILOBYTE
from repro.video.matrix import matrix_like_video


def test_fig9_compressed_video(benchmark, bench_config, results_dir):
    series = benchmark.pedantic(
        lambda: run_fig9(bench_config), rounds=1, iterations=1
    )
    text = report_fig9(series)
    (results_dir / "fig9.txt").write_text(text + "\n")
    print("\n" + text)

    by_name = {s.protocol: s for s in series}
    order = ["UD", "DHB-a", "DHB-b", "DHB-c", "DHB-d"]

    # The paper's ordering UD > DHB-a > DHB-b > DHB-c > DHB-d holds at every
    # swept rate.
    for i, rate in enumerate(by_name["UD"].rates):
        values = [by_name[name].means[i] for name in order]
        assert values == sorted(values, reverse=True), f"ordering broken at {rate}/h"

    # "Switching to a deterministic waiting time has the most impact": the
    # a->b saving is the largest single step at the top of the sweep.
    highs = {name: by_name[name].means[-1] for name in order}
    steps = {
        "a->b": highs["DHB-a"] - highs["DHB-b"],
        "b->c": highs["DHB-b"] - highs["DHB-c"],
        "c->d": highs["DHB-c"] - highs["DHB-d"],
    }
    assert steps["a->b"] == max(steps.values())
    # Frequency relaxation (DHB-d) buys a real, further saving.
    assert steps["c->d"] > 0.02 * highs["DHB-c"]


def test_fig9_derivation_matches_section4(benchmark, results_dir):
    """The static derivation table (segments / stream rates / periods)."""
    video = matrix_like_video()
    variants = benchmark(lambda: make_all_variants(video, FIG9_MAX_WAIT))

    a, b, c, d = (variants[k] for k in ("DHB-a", "DHB-b", "DHB-c", "DHB-d"))
    # Paper: 137 segments at the 951 KB/s peak.
    assert a.n_segments == 137
    assert a.stream_rate / KILOBYTE == pytest.approx(951.0)
    # Paper: DHB-b streams at 789 KB/s (max per-segment mean); ours is
    # trace-specific but must sit strictly between mean and peak.
    assert 636.0 < b.stream_rate / KILOBYTE < 951.0
    # Paper: DHB-c packs into 129 segments at 671 KB/s; ours lands close.
    assert 125 <= c.n_segments < 137
    assert c.stream_rate < b.stream_rate
    # Paper: DHB-d relaxes most periods by one to eight slots.
    gains = [d.periods[j] - j for j in range(1, d.n_segments + 1)]
    assert max(gains) >= 2
    assert sum(1 for g in gains if g > 0) >= d.n_segments // 4

    lines = [
        "Section 4 derivation (paper -> measured):",
        f"  DHB-a segments: 137 -> {a.n_segments}",
        f"  DHB-a stream KB/s: 951 -> {a.stream_rate / KILOBYTE:.0f}",
        f"  DHB-b stream KB/s: 789 -> {b.stream_rate / KILOBYTE:.0f}",
        f"  DHB-c segments: 129 -> {c.n_segments}",
        f"  DHB-c stream KB/s: 671 -> {c.stream_rate / KILOBYTE:.0f}",
        f"  DHB-d max period gain: 'one to eight slots' -> up to {max(gains)}",
    ]
    (results_dir / "section4_derivation.txt").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))
