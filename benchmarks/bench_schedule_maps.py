"""Benchmark + regeneration of Figures 1-5: the deterministic schedules.

These figures are exact, so the bench both times their construction and
asserts the renderings verbatim against the paper.
"""

from repro.experiments.fig1to5 import render_all_figures, render_figure

FIGURE_2_ROWS = [
    "Stream 1  S1 S1 S1 S1 S1 S1",
    "Stream 2  S2 S4 S2 S5 S2 S4",
    "Stream 3  S3 S6 S8 S3 S7 S9",
]


def test_figures_1_to_5(benchmark, results_dir):
    text = benchmark(render_all_figures)
    (results_dir / "figures_1_to_5.txt").write_text(text + "\n")
    print("\n" + text)

    assert render_figure(2).splitlines()[1:] == FIGURE_2_ROWS
    assert "S4 S5 S6 S7" in render_figure(1)     # FB stream 3
    assert "S4 S5 S4 S5" in render_figure(3)     # SB stream 3
    fig4 = render_figure(4).splitlines()
    assert fig4[-1].split() == ["1st", "Stream", "S1", "S2", "S3", "S4", "S5", "S6"]
    fig5 = render_figure(5).splitlines()
    assert fig5[-1].split() == ["2nd", "Stream", "S1", "S2"]
