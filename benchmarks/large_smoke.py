"""Large-horizon smoke check: one 1M-request fig7-style point, budgeted.

CI runs this after the unit suite to prove the columnar slotted path
actually delivers its scale claim on every commit — a million-request DHB
point must finish inside a wall-clock budget and a peak-RSS ceiling, on
the columnar path::

    PYTHONPATH=src python benchmarks/large_smoke.py
    python benchmarks/large_smoke.py --requests 2000000 --budget-seconds 120

Exit status: 0 when the point completes within budget, 1 otherwise.
"""

from __future__ import annotations

import argparse
import pathlib
import resource
import sys
import time

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

try:  # installed package, or PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # direct invocation from a source checkout
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.core.dhb import DHBProtocol
from repro.runtime.seeds import arrival_trace
from repro.sim.slotted import SlottedSimulation

#: Simulated hours for the smoke point; the rate scales with --requests.
HORIZON_HOURS = 50.0

#: Figure-7 geometry: a 2-hour video in 99 equal segments.
N_SEGMENTS = 99
SLOT_DURATION = 7200.0 / N_SEGMENTS


def peak_rss_mb() -> float:
    """Process peak resident-set size in MiB (``ru_maxrss``)."""
    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 1024.0 ** 2 if sys.platform == "darwin" else 1024.0
    return maxrss / divisor


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--requests",
        type=int,
        default=1_000_000,
        help="expected request count; sets the Poisson rate over 50 hours",
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=60.0,
        help="wall-clock budget for the simulation itself",
    )
    parser.add_argument(
        "--max-rss-mb",
        type=float,
        default=1024.0,
        help="peak-RSS ceiling in MiB for the whole process",
    )
    parser.add_argument("--seed", type=int, default=20260807)
    args = parser.parse_args(argv)

    rate_per_hour = args.requests / HORIZON_HOURS
    arrivals = arrival_trace(args.seed, rate_per_hour, HORIZON_HOURS)
    horizon_slots = int(HORIZON_HOURS * 3600.0 / SLOT_DURATION)
    warmup_slots = horizon_slots // 10

    start = time.perf_counter()
    result = SlottedSimulation(
        DHBProtocol(n_segments=N_SEGMENTS),
        SLOT_DURATION,
        horizon_slots,
        warmup_slots,
    ).run(arrivals)
    elapsed = time.perf_counter() - start
    rss = peak_rss_mb()

    print(
        f"large smoke: {arrivals.size} arrivals, {result.n_requests} measured, "
        f"mean_bw={result.mean_streams:.3f}, p99_wait={result.wait_p99:.1f}s"
    )
    print(
        f"elapsed {elapsed:.2f}s (budget {args.budget_seconds:.0f}s), "
        f"peak RSS {rss:.0f} MiB (ceiling {args.max_rss_mb:.0f} MiB), "
        f"columnar={result.columnar}"
    )

    failures = []
    if not result.columnar:
        failures.append("point did not run on the columnar path")
    if elapsed > args.budget_seconds:
        failures.append(
            f"wall clock {elapsed:.2f}s over budget {args.budget_seconds:.0f}s"
        )
    if rss > args.max_rss_mb:
        failures.append(f"peak RSS {rss:.0f} MiB over {args.max_rss_mb:.0f} MiB")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("large smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
