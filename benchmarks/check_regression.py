"""Bench-regression gate: fail CI when the hot paths get meaningfully slower.

Runs a fresh quick perf report (``perf_report.run_report``) and compares it
bench-by-bench against the committed ``BENCH_sweep.json`` baseline::

    make bench-check           # or: python benchmarks/check_regression.py
    python benchmarks/check_regression.py --threshold 2.0 --repeats 2

The comparison is deliberately coarse — this is a >2x "someone quadratic-ed
the hot loop" tripwire, not a microbenchmark suite:

* **Calibration scaling.**  Both reports carry ``calibration_seconds``, the
  timing of a fixed spin loop on the producing machine.  Fresh timings are
  divided by the calibration ratio so a committed baseline from a faster or
  slower box still gates correctly.
* **Noise floor.**  A fixed floor is added to both sides of the ratio so
  microsecond-scale benches cannot trip the gate on scheduler jitter.
* **Determinism check.**  The fresh ``fig7_quick_parallel``,
  ``cluster_quick_parallel``, ``runtime_quick``, ``fig7_columnar`` and
  ``checkpoint_resume_quick`` benches must report ``verified: 1`` — the
  serial/parallel, columnar/scalar and checkpoint-resume bit-for-bit
  equality invariants are part of the gate, not just the timings.
* **Checkpoint overhead ceiling.**  ``checkpoint_resume_quick`` must keep
  the journaling overhead on the quick sweep under 5%.
* **Serving gates.**  ``serve_loopback_quick`` must sustain the loopback
  session throughput floor, keep the p99 wait to first segment under 1.5x
  the bench slot, and report ``verified: 1`` (zero drops + sim agreement).
* **Edge gates.**  ``edge_quick`` must finish within 1.5x of
  ``cluster_quick`` in the same fresh report, and its measured cache hit
  ratio must land within 0.05 of the analytic Zipf expectation.
* **Adaptive gates.**  ``adaptive_day_quick`` must report the adaptive
  arm's day peak at or below static DHB's worst case (``verified: 1``
  additionally requires strictly below, under the shared deadline
  guarantee), and must finish within 1.5x of ``fig7_quick_serial`` in
  the same fresh report — nonstationary admission stays on the
  stationary sweep's hot path.
* **Memory and throughput ceilings.**  The columnar benches gate peak RSS
  (``micro_dhb_10m`` and ``fig7_columnar`` must stay under 1 GiB — the
  streaming-statistics promise) and ``micro_dhb_10m`` must hold a >= 5x
  measured speedup over the scalar per-request loop.

Exit status: 0 when every bench passes, 1 on any regression or missing
bench, 2 on a malformed/missing baseline.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Tuple

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

try:  # installed package, or PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # direct invocation from a source checkout
    sys.path.insert(0, str(_REPO_ROOT / "src"))

#: Default committed baseline, regenerated via ``make bench-json``.
DEFAULT_BASELINE = _REPO_ROOT / "BENCH_sweep.json"

#: Seconds added to both sides of the ratio so tiny benches ignore jitter.
NOISE_FLOOR_SECONDS = 0.005

#: Fresh/baseline slowdown beyond which a bench fails the gate.
DEFAULT_THRESHOLD = 2.0

#: Peak-RSS ceiling (MiB) for the columnar benches: "10M requests in
#: bounded memory" is an acceptance criterion, not an aspiration.
MEMORY_CEILING_MB = 1024.0

#: Minimum measured columnar/scalar throughput ratio for ``micro_dhb_10m``.
MIN_COLUMNAR_SPEEDUP = 5.0

#: Maximum journaling overhead (%) for ``checkpoint_resume_quick``.
MAX_CHECKPOINT_OVERHEAD_PCT = 5.0

#: Serving-path gates for ``serve_loopback_quick``: the live daemon must
#: sustain at least this many sessions/second on loopback, and the p99
#: wait to first segment must stay under 1.5x the 50ms bench slot — the
#: DHB one-slot bound plus scheduling slack.
MIN_SERVE_CLIENTS_PER_SEC = 25.0
MAX_SERVE_P99_WAIT_MS = 75.0

#: Edge-tier gates for ``edge_quick``: the hierarchy bench must finish
#: within this multiple of ``cluster_quick`` in the *same* fresh report
#: (the edge tier is a thin layer over the cluster loop, not a second
#: simulator), and its measured cache hit ratio must land within this
#: slack of the analytic Zipf expectation recorded alongside it.
MAX_EDGE_OVER_CLUSTER_RATIO = 1.5
EDGE_HIT_RATIO_SLACK = 0.05

#: Adaptive-DHB gates for ``adaptive_day_quick``: the nonstationary day
#: study must keep the retuning arm's peak at or below static DHB's and
#: finish within this multiple of the stationary quick sweep
#: (``fig7_quick_serial``) in the same fresh report.
MAX_ADAPTIVE_OVER_SWEEP_RATIO = 1.5


def calibration_ratio(fresh: Dict, baseline: Dict) -> float:
    """How much faster the fresh machine is than the baseline machine.

    Returns ``fresh_calibration / baseline_calibration`` (>1 means the
    fresh machine is *slower*), or 1.0 when either report predates the
    calibration field.
    """
    fresh_cal = fresh.get("calibration_seconds")
    base_cal = baseline.get("calibration_seconds")
    if not fresh_cal or not base_cal:
        return 1.0
    return float(fresh_cal) / float(base_cal)


def compare(
    fresh: Dict,
    baseline: Dict,
    threshold: float = DEFAULT_THRESHOLD,
    noise_floor: float = NOISE_FLOOR_SECONDS,
) -> Tuple[List[str], List[str]]:
    """Gate a fresh report against a baseline.

    Returns ``(lines, failures)``: human-readable per-bench report lines,
    and the subset describing failures (empty means the gate passes).
    """
    lines: List[str] = []
    failures: List[str] = []
    scale = calibration_ratio(fresh, baseline)
    lines.append(f"calibration ratio (fresh/baseline): {scale:.3f}")
    fresh_benches = fresh.get("benches", {})
    for name, base_entry in sorted(baseline.get("benches", {}).items()):
        fresh_entry = fresh_benches.get(name)
        if fresh_entry is None:
            failures.append(f"{name}: missing from fresh report")
            lines.append(failures[-1])
            continue
        base_seconds = float(base_entry["seconds"])
        fresh_seconds = float(fresh_entry["seconds"]) / scale
        ratio = (fresh_seconds + noise_floor) / (base_seconds + noise_floor)
        verdict = "ok" if ratio <= threshold else f"REGRESSION (> {threshold:.1f}x)"
        lines.append(
            f"{name:28s} base {base_seconds * 1000:9.2f} ms   "
            f"fresh {fresh_seconds * 1000:9.2f} ms   x{ratio:5.2f}   {verdict}"
        )
        if ratio > threshold:
            failures.append(f"{name}: {ratio:.2f}x slower than baseline")
    for verified_bench in (
        "fig7_quick_parallel",
        "cluster_quick_parallel",
        "runtime_quick",
        "fig7_columnar",
        "checkpoint_resume_quick",
        "adaptive_day_quick",
        "serve_loopback_quick",
    ):
        parallel = fresh_benches.get(verified_bench, {}).get("detail", {})
        if parallel.get("verified") != 1:
            failures.append(
                f"{verified_bench}: equality invariant not verified "
                f"(detail: {parallel!r})"
            )
            lines.append(failures[-1])
        else:
            lines.append(f"{verified_bench:28s}   equality verified")
    for memory_bench in ("micro_dhb_10m", "fig7_columnar"):
        detail = fresh_benches.get(memory_bench, {}).get("detail", {})
        rss = detail.get("peak_rss_mb")
        if rss is None:
            failures.append(f"{memory_bench}: no peak_rss_mb in detail")
            lines.append(failures[-1])
        elif float(rss) >= MEMORY_CEILING_MB:
            failures.append(
                f"{memory_bench}: peak RSS {rss} MiB >= {MEMORY_CEILING_MB} MiB"
            )
            lines.append(failures[-1])
        else:
            lines.append(
                f"{memory_bench:28s}   peak RSS {rss} MiB "
                f"< {MEMORY_CEILING_MB:.0f} MiB"
            )
    speedup = (
        fresh_benches.get("micro_dhb_10m", {})
        .get("detail", {})
        .get("speedup_vs_scalar")
    )
    if speedup is None or float(speedup) < MIN_COLUMNAR_SPEEDUP:
        failures.append(
            f"micro_dhb_10m: columnar speedup {speedup!r} below "
            f"{MIN_COLUMNAR_SPEEDUP}x over the scalar loop"
        )
        lines.append(failures[-1])
    else:
        lines.append(
            f"{'micro_dhb_10m':28s}   columnar x{float(speedup):.1f} "
            f">= {MIN_COLUMNAR_SPEEDUP:.0f}x scalar"
        )
    overhead = (
        fresh_benches.get("checkpoint_resume_quick", {})
        .get("detail", {})
        .get("overhead_pct")
    )
    if overhead is None or float(overhead) >= MAX_CHECKPOINT_OVERHEAD_PCT:
        failures.append(
            f"checkpoint_resume_quick: journaling overhead {overhead!r}% not "
            f"under {MAX_CHECKPOINT_OVERHEAD_PCT}%"
        )
        lines.append(failures[-1])
    else:
        lines.append(
            f"{'checkpoint_resume_quick':28s}   journaling overhead "
            f"{float(overhead):.2f}% < {MAX_CHECKPOINT_OVERHEAD_PCT:.0f}%"
        )
    serve_detail = fresh_benches.get("serve_loopback_quick", {}).get("detail", {})
    throughput = serve_detail.get("clients_per_sec")
    if throughput is None or float(throughput) < MIN_SERVE_CLIENTS_PER_SEC:
        failures.append(
            f"serve_loopback_quick: throughput {throughput!r} clients/sec "
            f"below {MIN_SERVE_CLIENTS_PER_SEC}"
        )
        lines.append(failures[-1])
    else:
        lines.append(
            f"{'serve_loopback_quick':28s}   {float(throughput):.1f} clients/s "
            f">= {MIN_SERVE_CLIENTS_PER_SEC:.0f}"
        )
    edge_entry = fresh_benches.get("edge_quick", {})
    cluster_seconds = fresh_benches.get("cluster_quick", {}).get("seconds")
    edge_seconds = edge_entry.get("seconds")
    if edge_seconds is None or cluster_seconds is None:
        failures.append("edge_quick: missing edge/cluster timings in fresh report")
        lines.append(failures[-1])
    else:
        # Same report, same machine: no calibration scaling needed.
        edge_ratio = (float(edge_seconds) + noise_floor) / (
            float(cluster_seconds) + noise_floor
        )
        if edge_ratio > MAX_EDGE_OVER_CLUSTER_RATIO:
            failures.append(
                f"edge_quick: {edge_ratio:.2f}x cluster_quick, over the "
                f"{MAX_EDGE_OVER_CLUSTER_RATIO}x ceiling"
            )
            lines.append(failures[-1])
        else:
            lines.append(
                f"{'edge_quick':28s}   x{edge_ratio:.2f} cluster_quick "
                f"<= {MAX_EDGE_OVER_CLUSTER_RATIO}x"
            )
    edge_detail = edge_entry.get("detail", {})
    hit_ratio = edge_detail.get("hit_ratio")
    expected = edge_detail.get("expected_hit_ratio")
    if hit_ratio is None or expected is None:
        failures.append("edge_quick: no hit_ratio/expected_hit_ratio in detail")
        lines.append(failures[-1])
    elif float(hit_ratio) < float(expected) - EDGE_HIT_RATIO_SLACK:
        failures.append(
            f"edge_quick: hit ratio {hit_ratio} below analytic "
            f"expectation {expected} - {EDGE_HIT_RATIO_SLACK}"
        )
        lines.append(failures[-1])
    else:
        lines.append(
            f"{'edge_quick':28s}   hit ratio {float(hit_ratio):.3f} "
            f">= {float(expected):.3f} - {EDGE_HIT_RATIO_SLACK}"
        )
    adaptive_entry = fresh_benches.get("adaptive_day_quick", {})
    adaptive_detail = adaptive_entry.get("detail", {})
    static_peak = adaptive_detail.get("static_peak")
    adaptive_peak = adaptive_detail.get("adaptive_peak")
    if static_peak is None or adaptive_peak is None:
        failures.append("adaptive_day_quick: no static/adaptive peaks in detail")
        lines.append(failures[-1])
    elif float(adaptive_peak) > float(static_peak):
        failures.append(
            f"adaptive_day_quick: adaptive peak {adaptive_peak} exceeds the "
            f"static DHB worst case {static_peak}"
        )
        lines.append(failures[-1])
    else:
        lines.append(
            f"{'adaptive_day_quick':28s}   peak {float(adaptive_peak):.0f} "
            f"<= static {float(static_peak):.0f}"
        )
    adaptive_seconds = adaptive_entry.get("seconds")
    sweep_seconds = fresh_benches.get("fig7_quick_serial", {}).get("seconds")
    if adaptive_seconds is None or sweep_seconds is None:
        failures.append(
            "adaptive_day_quick: missing adaptive/sweep timings in fresh report"
        )
        lines.append(failures[-1])
    else:
        # Same report, same machine: no calibration scaling needed.
        adaptive_ratio = (float(adaptive_seconds) + noise_floor) / (
            float(sweep_seconds) + noise_floor
        )
        if adaptive_ratio > MAX_ADAPTIVE_OVER_SWEEP_RATIO:
            failures.append(
                f"adaptive_day_quick: {adaptive_ratio:.2f}x fig7_quick_serial, "
                f"over the {MAX_ADAPTIVE_OVER_SWEEP_RATIO}x ceiling"
            )
            lines.append(failures[-1])
        else:
            lines.append(
                f"{'adaptive_day_quick':28s}   x{adaptive_ratio:.2f} "
                f"fig7_quick_serial <= {MAX_ADAPTIVE_OVER_SWEEP_RATIO}x"
            )
    p99_ms = serve_detail.get("p99_wait_ms")
    if p99_ms is None or float(p99_ms) > MAX_SERVE_P99_WAIT_MS:
        failures.append(
            f"serve_loopback_quick: p99 wait {p99_ms!r} ms over the "
            f"{MAX_SERVE_P99_WAIT_MS} ms bound (1.5x the 50 ms slot)"
        )
        lines.append(failures[-1])
    else:
        lines.append(
            f"{'serve_loopback_quick':28s}   p99 wait {float(p99_ms):.2f} ms "
            f"<= {MAX_SERVE_P99_WAIT_MS:.0f} ms"
        )
    return lines, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=DEFAULT_BASELINE,
        help="committed baseline report (default: BENCH_sweep.json)",
    )
    parser.add_argument(
        "--fresh",
        type=pathlib.Path,
        default=None,
        help="precomputed fresh report; omit to run the benches now",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fresh/baseline slowdown (default: 2.0)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="best-of repetitions per bench"
    )
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(args.baseline.read_text())
    except (OSError, ValueError) as exc:
        print(f"cannot read baseline {args.baseline}: {exc}", file=sys.stderr)
        return 2

    if args.fresh is not None:
        try:
            fresh = json.loads(args.fresh.read_text())
        except (OSError, ValueError) as exc:
            print(f"cannot read fresh report {args.fresh}: {exc}", file=sys.stderr)
            return 2
    else:
        try:
            from .perf_report import calibrate, run_report
        except ImportError:  # run as a script rather than as benchmarks.*
            from perf_report import calibrate, run_report

        fresh = run_report(max(1, args.repeats))
        fresh["calibration_seconds"] = calibrate()

    lines, failures = compare(fresh, baseline, threshold=args.threshold)
    print("\n".join(lines))
    if failures:
        print(f"\nbench gate FAILED ({len(failures)} issue(s)):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbench gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
