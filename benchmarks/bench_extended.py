"""Extended comparison: every protocol in the library over the paper grid.

Beyond the paper's Figure 7 cast, this bench races the whole related-work
section — DSB, HMSM, selective catching, batching, dynamic NPB, FB, SB —
against DHB on the same seeded workloads, and checks the qualitative
positioning Section 2 describes for each of them.
"""

from repro.analysis.metrics import series_by_name
from repro.analysis.tables import format_series_table
from repro.experiments.config import SweepConfig
from repro.experiments.runner import sweep_protocols

EXTENDED_CONFIG = SweepConfig(
    rates_per_hour=(2.0, 10.0, 50.0, 200.0, 1000.0),
    base_hours=20.0,
    min_requests=200,
)

CAST = [
    ("dhb", "DHB"),
    ("ud", "UD"),
    ("dnpb", "dyn-NPB"),
    ("dsb", "dyn-SB"),
    ("npb", "NPB"),
    ("fb", "FB"),
    ("sb", "SB"),
    ("stream-tapping", "tapping"),
    ("patching", "patching"),
    ("hmsm", "HMSM"),
    ("catching", "catching"),
    ("batching", "batching"),
]


def test_extended_comparison(benchmark, results_dir):
    series = benchmark.pedantic(
        lambda: sweep_protocols(
            [name for name, _ in CAST],
            EXTENDED_CONFIG,
            labels=[label for _, label in CAST],
        ),
        rounds=1,
        iterations=1,
    )
    text = (
        "Extended comparison, mean streams (all protocols, 99 segments / "
        "two-hour video):\n" + format_series_table(series, value="mean")
    )
    (results_dir / "extended_comparison.txt").write_text(text + "\n")
    print("\n" + text)

    indexed = series_by_name(series)
    at_top = {label: indexed[label].means[-1] for _, label in CAST}

    # Fixed protocols pay their allocation; SB > FB > NPB for one deadline.
    assert at_top["SB"] > at_top["FB"] > at_top["NPB"]

    # DHB undercuts every rival at the top of the sweep — with one
    # documented exception: our occurrence-level dynamic NPB reconstruction
    # saturates marginally below DHB (it inherits NPB's deadline-hugging
    # periods while DHB's heuristic occasionally schedules ahead of the
    # latest slot).  See the dnpb module docstring and EXPERIMENTS.md; DHB
    # still beats it clearly at low rates, where flexibility matters.
    for label in at_top:
        if label not in ("DHB", "dyn-NPB"):
            assert at_top["DHB"] <= at_top[label] + 1e-9, label
    assert at_top["dyn-NPB"] > 0.95 * at_top["DHB"]
    low = {label: indexed[label].means[0] for _, label in CAST}
    assert low["DHB"] < low["dyn-NPB"]

    # DSB saturates at SB's allocation, above UD — Section 2's claim.
    assert abs(at_top["dyn-SB"] - at_top["SB"]) < 0.05
    assert at_top["dyn-SB"] > at_top["UD"]

    # HMSM is the best zero-delay protocol, far below tapping/patching at
    # high rates but above the slotted protocols (it pays for zero delay).
    assert at_top["HMSM"] < at_top["tapping"]
    assert at_top["HMSM"] < at_top["patching"]
    assert at_top["HMSM"] < at_top["catching"]
    assert at_top["HMSM"] > at_top["DHB"]

    # Tapping and patching ride the same curve (Figure 7 plots them as one).
    tapping = indexed["tapping"].means
    patching = indexed["patching"].means
    for t, p in zip(tapping, patching):
        assert t <= p * 1.10

    # Batching with its default 5-minute window is cheap but pays in delay
    # — cross-check the waiting-time ledger.
    assert indexed["batching"].points[-1].mean_wait > 60.0
    assert indexed["DHB"].points[-1].mean_wait < 40.0
