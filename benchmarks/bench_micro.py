"""Micro-benchmarks of the hot paths.

Section 3 discusses DHB's scheduling cost: "each incoming request will
result in the separate scheduling of 99 possible new segment instances.
Fortunately ... the actual complexity of the task will be greatly reduced at
high arrival rates because most of the segment instances required by a
particular request would have been already scheduled."  These benches
measure exactly that, plus the other constructive hot paths.
"""

import numpy as np

from repro.core.dhb import DHBProtocol
from repro.protocols.npb import pagoda_map
from repro.protocols.stream_tapping import StreamTappingProtocol
from repro.smoothing.packing import pack_video
from repro.video.matrix import matrix_like_video
from repro.workload.arrivals import PoissonArrivals


def test_dhb_request_handling_cold(benchmark):
    """Request admission into a lightly loaded 99-segment schedule."""

    def admit_batch():
        protocol = DHBProtocol(n_segments=99)
        for slot in range(0, 2000, 40):  # sparse: little sharing
            protocol.handle_request(slot)
        return protocol.schedule.total_instances

    instances = benchmark(admit_batch)
    assert instances > 0


def test_dhb_request_handling_saturated(benchmark):
    """The paper's point: saturated requests mostly hit the sharing check."""

    def admit_batch():
        protocol = DHBProtocol(n_segments=99)
        for slot in range(2000):  # one request per slot
            protocol.handle_request(slot)
        return protocol.schedule.total_instances

    instances = benchmark(admit_batch)
    # Nearly every segment is shared: far fewer instances than 2000 * 99.
    assert instances < 2000 * 12


def test_pagoda_packing(benchmark):
    """Constructing the six-stream NPB map (the Figures 7/8 substrate)."""
    result = benchmark(lambda: pagoda_map(6, n_segments=99))
    assert result.n_segments == 99


def test_matrix_trace_generation(benchmark):
    """Synthesising + calibrating the 8170-second VBR trace."""
    video = benchmark.pedantic(matrix_like_video, rounds=1, iterations=1)
    assert video.duration == 8170.0


def test_workahead_packing(benchmark):
    """The DHB-c/d smoothing computation over the full trace."""
    video = matrix_like_video()
    packed = benchmark(lambda: pack_video(video, 60.0))
    assert packed.n_segments > 100


def test_stream_tapping_request_handling(benchmark):
    """Interval arithmetic under a busy tapping group."""
    times = PoissonArrivals(500.0).generate(
        4 * 3600.0, np.random.default_rng(0)
    )

    def serve_all():
        protocol = StreamTappingProtocol(7200.0, expected_rate_per_hour=500.0)
        total = 0.0
        for t in times:
            for start, end in protocol.handle_request(float(t)):
                total += end - start
        return total

    busy = benchmark.pedantic(serve_all, rounds=1, iterations=1)
    assert busy > 0


def test_poisson_generation(benchmark):
    """Workload generation throughput (vectorised)."""
    rng = np.random.default_rng(1)
    result = benchmark(lambda: PoissonArrivals(1000.0).generate(100 * 3600.0, rng))
    assert len(result) > 50_000
