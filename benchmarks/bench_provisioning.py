"""Extension bench: catalog-level capacity provisioning.

Quantifies the statistical-multiplexing payoff of a dynamic protocol: DHB
titles under Zipf demand peak at different moments, so the capacity needed
for a small overflow probability sits far below a wall of fixed per-title
allocations — the deployment argument behind the paper's introduction.
"""

from repro.analysis.tables import format_simple_table
from repro.core.dhb import DHBProtocol
from repro.protocols.npb import NewPagodaBroadcasting
from repro.server.provisioning import provision_catalog
from repro.units import TWO_HOURS
from repro.workload.popularity import ZipfCatalog

N_SEGMENTS = 99
SLOT = TWO_HOURS / N_SEGMENTS
N_TITLES = 12
TOTAL_RATE = 360.0


def test_catalog_provisioning(benchmark, results_dir):
    catalog = ZipfCatalog(n_videos=N_TITLES, theta=1.0)
    rates = [catalog.rate_for(rank, TOTAL_RATE) for rank in range(N_TITLES)]

    result = benchmark.pedantic(
        lambda: provision_catalog(
            lambda title: DHBProtocol(n_segments=N_SEGMENTS),
            rates,
            SLOT,
            horizon_slots=2000,
            warmup_slots=200,
        ),
        rounds=1,
        iterations=1,
    )

    fixed_wall = N_TITLES * NewPagodaBroadcasting(n_segments=N_SEGMENTS).n_allocated_streams
    rows = [
        ["mean aggregate load", f"{result.mean_streams:.1f}"],
        ["95th percentile", f"{result.quantile(0.95):.0f}"],
        ["capacity @ 1% overflow", f"{result.capacity_for_overflow(0.01)}"],
        ["capacity @ 0.1% overflow", f"{result.capacity_for_overflow(0.001)}"],
        ["observed peak", f"{result.peak_streams}"],
        ["fixed NPB wall (12 x 6)", f"{fixed_wall}"],
    ]
    text = (
        f"Catalog provisioning: {N_TITLES} titles, Zipf(1.0), "
        f"{TOTAL_RATE:g} requests/hour aggregate, DHB per title\n"
        + format_simple_table(["quantity", "streams"], rows)
    )
    (results_dir / "provisioning.txt").write_text(text + "\n")
    print("\n" + text)

    # The multiplexed capacity undercuts the fixed wall even at 0.1%.
    assert result.capacity_for_overflow(0.001) < fixed_wall
    assert result.mean_streams < 0.75 * fixed_wall
    # And the quantile ladder is coherent.
    assert (
        result.mean_streams
        <= result.quantile(0.95)
        <= result.capacity_for_overflow(0.01)
        <= result.peak_streams
    )
