"""Ablation benches over DHB's design choices (DESIGN.md §6).

* the slot-selection heuristic (the paper's rule vs always-latest /
  earliest-fit / random-fit),
* instance sharing on/off,
* the "slot 120!" bandwidth-peak demonstration,
* the segment-count trade-off (waiting time vs bandwidth).
"""

from repro.analysis.metrics import series_by_name
from repro.analysis.tables import format_series_table, format_simple_table
from repro.core.dhb import DHBProtocol
from repro.experiments.ablations import (
    heuristic_ablation,
    peak_demonstration,
    sharing_ablation,
)
from repro.experiments.config import SweepConfig
from repro.experiments.runner import arrivals_for_rate, measure_protocol

ABLATION_CONFIG = SweepConfig(
    rates_per_hour=(2.0, 20.0, 200.0), base_hours=20.0, min_requests=150
)


def test_heuristic_ablation(benchmark, results_dir):
    series = benchmark.pedantic(
        lambda: heuristic_ablation(ABLATION_CONFIG), rounds=1, iterations=1
    )
    mean_table = format_series_table(series, value="mean")
    max_table = format_series_table(series, value="max", precision=0)
    text = f"Heuristic ablation, mean streams:\n{mean_table}\n\n" \
           f"Heuristic ablation, max streams:\n{max_table}"
    (results_dir / "ablation_heuristic.txt").write_text(text + "\n")
    print("\n" + text)

    indexed = series_by_name(series)
    paper = indexed["min-load/latest (paper)"]
    naive = indexed["always-latest (naive)"]
    earliest = indexed["min-load/earliest"]
    # The load-blind rule pays a visible peak penalty under load.
    assert naive.maxima[-1] > paper.maxima[-1]
    # The "longest delay" tie-break buys average bandwidth at every rate:
    # earliest-fit shortens sharing horizons and costs more.
    assert all(p <= e + 0.02 for p, e in zip(paper.means, earliest.means))
    assert paper.means[0] < earliest.means[0]


def test_sharing_ablation(benchmark, results_dir):
    series = benchmark.pedantic(
        lambda: sharing_ablation(ABLATION_CONFIG), rounds=1, iterations=1
    )
    text = "Sharing ablation, mean streams:\n" + format_series_table(series)
    (results_dir / "ablation_sharing.txt").write_text(text + "\n")
    print("\n" + text)

    indexed = series_by_name(series)
    with_sharing = indexed["DHB (sharing)"]
    without = indexed["DHB (no sharing)"]
    for i, rate in enumerate(with_sharing.rates):
        assert with_sharing.means[i] < without.means[i]
    # Unshared scheduling costs one full video per request: ~ lambda * D.
    assert without.means[-1] > 50.0


def test_peak_demonstration(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: peak_demonstration(n_segments=60, n_slots=4000),
        rounds=1,
        iterations=1,
    )
    rows = [
        [label, f"{stats['mean_streams']:.2f}", f"{stats['max_streams']:.0f}"]
        for label, stats in results.items()
    ]
    text = (
        "Bandwidth-peak demonstration (one request per slot, 60 segments):\n"
        + format_simple_table(["chooser", "mean", "max"], rows)
    )
    (results_dir / "ablation_peak.txt").write_text(text + "\n")
    print("\n" + text)

    assert results["always-latest"]["max_streams"] >= (
        results["heuristic"]["max_streams"] + 4
    )


def test_segment_count_tradeoff(benchmark, results_dir):
    """More segments: shorter waits, more bandwidth — the DHB dial."""

    def sweep_counts():
        rows = []
        config = SweepConfig(
            rates_per_hour=(100.0,), base_hours=20.0, min_requests=150
        )
        for n in (25, 50, 99, 200):
            per_n = config.replace(n_segments=n)
            point = measure_protocol(
                DHBProtocol(n_segments=n),
                per_n,
                100.0,
                arrival_times=arrivals_for_rate(per_n, 100.0),
            )
            rows.append((n, per_n.slot_duration, point.mean_bandwidth))
        return rows

    rows = benchmark.pedantic(sweep_counts, rounds=1, iterations=1)
    table = format_simple_table(
        ["segments", "max wait s", "mean streams"],
        [[n, f"{wait:.1f}", f"{mean:.2f}"] for n, wait, mean in rows],
    )
    text = "Segment-count trade-off at 100 requests/hour:\n" + table
    (results_dir / "ablation_segments.txt").write_text(text + "\n")
    print("\n" + text)

    waits = [wait for _, wait, _ in rows]
    means = [mean for _, _, mean in rows]
    assert waits == sorted(waits, reverse=True)
    assert means == sorted(means)  # bandwidth grows ~ H(n)
