"""Perf-regression harness: machine-readable timings for the hot paths.

Runs the constructive micro-benches (DHB/UD admission under saturation and
under sparse load) and the quick Figure-7 sweep — serial and parallel — and
writes ``BENCH_sweep.json`` at the repository root.  Each entry records the
best-of-``repeats`` wall time plus a scale detail, so successive PRs have a
perf trajectory to regress against::

    make bench-json            # or: python benchmarks/perf_report.py
    python benchmarks/perf_report.py --output /tmp/bench.json --repeats 5

The parallel sweep entry doubles as a determinism check: the harness fails
loudly if the ``n_jobs=2`` series differ from the serial ones.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import resource
import sys
import time
from typing import Callable, Dict, Tuple

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

try:  # installed package, or PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # direct invocation from a source checkout
    sys.path.insert(0, str(_REPO_ROOT / "src"))

import numpy as np

from repro.cluster.scenario import (
    preset_scenarios,
    run_scenario,
    run_scenarios,
    scenario_specs,
)
from repro.core.dhb import DHBProtocol
from repro.edge.cache import allocate_prefixes
from repro.edge.scenario import preset_hierarchy, run_hierarchy
from repro.experiments.config import SweepConfig
from repro.experiments.fig7 import FIG7_PROTOCOLS
from repro.experiments.runner import (
    arrivals_for_rate,
    clear_trace_cache,
    measure_protocol,
    sweep_grid,
    sweep_protocols,
)
from repro.protocols.ud import UniversalDistributionProtocol
from repro.runtime import Engine
from repro.sim.slotted import SlottedSimulation
from repro.workload.popularity import ZipfCatalog

#: Quick Figure-7 grid: full protocol set, three rates, short horizons.
QUICK_CONFIG = SweepConfig().quick()


def peak_rss_mb() -> float:
    """Process peak resident-set size in MiB (``ru_maxrss``).

    Linux reports kilobytes, macOS bytes; everything downstream (bench
    details, the regression gate's memory ceiling) works in MiB.
    """
    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 1024.0 ** 2 if sys.platform == "darwin" else 1024.0
    return maxrss / divisor


def bench_dhb_saturated() -> Dict[str, float]:
    """2000 saturated admissions into a 99-segment DHB schedule."""
    protocol = DHBProtocol(n_segments=99)
    for slot in range(2000):
        protocol.handle_request(slot)
    return {"requests": 2000, "instances": protocol.schedule.total_instances}


def bench_dhb_cold() -> Dict[str, float]:
    """Sparse admissions (little sharing): the constructive worst case."""
    protocol = DHBProtocol(n_segments=99)
    for slot in range(0, 2000, 40):
        protocol.handle_request(slot)
    return {"requests": 50, "instances": protocol.schedule.total_instances}


def bench_ud_saturated() -> Dict[str, float]:
    """2000 saturated admissions into the 99-segment UD (on-demand FB) map."""
    protocol = UniversalDistributionProtocol(n_segments=99)
    for slot in range(2000):
        protocol.handle_request(slot)
    return {"requests": 2000}


def bench_fig7_quick_serial() -> Dict[str, float]:
    """The quick Figure-7 sweep (4 protocols x 3 rates), serial, cold cache."""
    clear_trace_cache()
    names = [name for name, _ in FIG7_PROTOCOLS]
    series = sweep_protocols(names, QUICK_CONFIG, n_jobs=1)
    return {"points": sum(len(s.points) for s in series)}


def bench_fig7_quick_parallel() -> Dict[str, float]:
    """Same sweep with n_jobs=2; asserts bit-for-bit equality with serial."""
    names = [name for name, _ in FIG7_PROTOCOLS]
    serial = sweep_protocols(names, QUICK_CONFIG, n_jobs=1)
    parallel = sweep_protocols(names, QUICK_CONFIG, n_jobs=2)
    for a, b in zip(serial, parallel):
        if a.points != b.points:
            raise AssertionError(
                f"parallel sweep diverged from serial for {a.protocol!r}"
            )
    return {"points": sum(len(s.points) for s in parallel), "verified": 1}


def bench_dhb_10m() -> Dict[str, float]:
    """One fig7-style DHB point over 10M requests on the columnar path.

    The ROADMAP's production-scale target: a saturated 99-segment DHB
    point whose trace no longer fits a per-request Python loop.  The
    detail records throughput, the measured speedup over the scalar loop
    on a 200k-request prefix of the same trace (the regression gate
    requires >= 5x), and the process peak RSS (gated < 1 GiB — the
    streaming statistics keep the run's footprint at the trace itself).
    """
    d = 1.0
    horizon = 100_000
    warmup = 1_000
    rng = np.random.default_rng(20260807)
    arrivals = np.sort(rng.uniform(0.0, horizon * d, 10_000_000))
    start = time.perf_counter()
    result = SlottedSimulation(
        DHBProtocol(n_segments=99), d, horizon, warmup
    ).run(arrivals)
    columnar_seconds = time.perf_counter() - start
    if not result.columnar:
        raise AssertionError("10M bench did not take the columnar path")
    # Scalar baseline on a prefix at the same saturation density
    # (~100 requests/slot), so the ratio compares per-request costs.
    prefix_slots = 2_000
    prefix = arrivals[: int(np.searchsorted(arrivals, float(prefix_slots)))]
    start = time.perf_counter()
    scalar_result = SlottedSimulation(
        DHBProtocol(n_segments=99), d, prefix_slots, warmup, columnar=False
    ).run(prefix)
    scalar_seconds = time.perf_counter() - start
    columnar_rps = result.n_requests / columnar_seconds
    scalar_rps = scalar_result.n_requests / scalar_seconds
    return {
        "requests": result.n_requests,
        "requests_per_second": round(columnar_rps),
        "speedup_vs_scalar": round(columnar_rps / scalar_rps, 2),
        "peak_rss_mb": round(peak_rss_mb(), 1),
    }


def bench_fig7_columnar() -> Dict[str, float]:
    """The quick Figure-7 sweep, columnar vs forced-scalar, cross-checked.

    Runs the sweep the normal way (slotted points take the columnar hot
    path) and re-measures every slotted cell with ``columnar=False``;
    fails loudly on any difference, so the entry doubles as a bit-for-bit
    equivalence check (``verified``) alongside its timing.
    """
    from repro.protocols.registry import ProtocolContext, build_protocol
    from repro.sim.slotted import SlottedModel

    names = [name for name, _ in FIG7_PROTOCOLS]
    series = sweep_protocols(names, QUICK_CONFIG, n_jobs=1)
    for name, measured in zip(names, series):
        for rate, point in zip(QUICK_CONFIG.rates_per_hour, measured.points):
            context = ProtocolContext(
                n_segments=QUICK_CONFIG.n_segments,
                duration=QUICK_CONFIG.duration,
                rate_per_hour=rate,
            )
            protocol = build_protocol(name, context)
            if not isinstance(protocol, SlottedModel):
                continue
            scalar_point = measure_protocol(
                protocol,
                QUICK_CONFIG,
                rate,
                arrival_times=arrivals_for_rate(QUICK_CONFIG, rate),
                columnar=False,
            )
            if scalar_point != point:
                raise AssertionError(
                    f"columnar sweep diverged from scalar for {name!r} @ {rate}"
                )
    return {
        "points": sum(len(s.points) for s in series),
        "verified": 1,
        "peak_rss_mb": round(peak_rss_mb(), 1),
    }


def bench_cluster_quick() -> Dict[str, float]:
    """The quick baseline cluster scenario (4 capped servers, 6 titles)."""
    scenario = preset_scenarios(quick=True)[0]
    result = run_scenario(scenario)
    return {
        "slots": scenario.horizon_slots,
        "admitted": result.admitted,
        "servers": scenario.topology.n_servers,
    }


def bench_cluster_parallel() -> Dict[str, float]:
    """All three quick scenarios with n_jobs=2; asserts equality with serial."""
    scenarios = preset_scenarios(quick=True)
    serial = run_scenarios(scenarios, n_jobs=1)
    parallel = run_scenarios(scenarios, n_jobs=2)
    for a, b in zip(serial, parallel):
        if a.to_dict() != b.to_dict():
            raise AssertionError(
                f"parallel cluster run diverged from serial for {a.scenario!r}"
            )
    return {
        "scenarios": len(scenarios),
        "admitted": sum(r.admitted for r in parallel),
        "verified": 1,
    }


def bench_edge_quick() -> Dict[str, float]:
    """The quick origin→edge hierarchy (two caching edges over the cluster).

    One ``run_hierarchy`` pass at the stock 25% cache budget.  The detail
    carries the measured cache hit ratio next to the analytic expectation
    (the popularity mass of cached titles) so the regression gate can hold
    the simulator to the Zipf arithmetic; the gate also bounds this bench's
    wall time relative to ``cluster_quick`` in the same report — the edge
    tier must stay a thin layer over the pure-cluster run, not a second
    simulator.
    """
    scenario = preset_hierarchy(quick=True)
    result = run_hierarchy(scenario)
    shares = ZipfCatalog(
        scenario.topology.n_titles, scenario.zipf_theta
    ).probabilities
    allocation = allocate_prefixes(
        scenario.prefix_policy,
        shares,
        scenario.topology.edges[0].cache_segments,
        scenario.n_segments,
    )
    return {
        "slots": scenario.horizon_slots,
        "edges": scenario.topology.n_edges,
        "admitted": result.cluster.admitted,
        "hit_ratio": round(result.hit_ratio, 4),
        "expected_hit_ratio": round(allocation.expected_hit_ratio(shares), 4),
        "origin_mean_streams": round(result.origin_mean_streams, 4),
    }


def bench_runtime_quick() -> Dict[str, float]:
    """A mixed spec batch (sweep cells + cluster scenarios) on one Engine.

    Exercises the unified runtime the way the CLI does: heterogeneous task
    kinds in a single submission, serial vs two workers, with the usual
    bit-for-bit equality assertion.
    """
    names = [name for name, _ in FIG7_PROTOCOLS]
    specs = sweep_grid(names, QUICK_CONFIG) + scenario_specs(
        preset_scenarios(quick=True)
    )
    serial = Engine(n_jobs=1).run_values(specs)
    parallel = Engine(n_jobs=2).run_values(specs)
    for spec, a, b in zip(specs, serial, parallel):
        a_dict = a.to_dict() if hasattr(a, "to_dict") else a
        b_dict = b.to_dict() if hasattr(b, "to_dict") else b
        if a_dict != b_dict:
            raise AssertionError(
                f"parallel runtime diverged from serial for {spec.label!r}"
            )
    return {"specs": len(specs), "verified": 1}


def bench_checkpoint_resume_quick() -> Dict[str, float]:
    """Checkpointed quick sweep: journaling overhead plus a resume check.

    Times the quick Figure-7 grid twice on a serial Engine — bare, then
    journaling every cell into a fresh :class:`CheckpointStore` — and
    records the checkpoint overhead as a percentage (the regression gate
    requires < 5%).  A third run resumes over the journal and must
    replay every cell without executing any (the ``execution_count``
    probe), which is what makes the entry ``verified``.
    """
    import tempfile

    from repro.runtime import (
        CheckpointStore,
        SerialBackend,
        execution_count,
        reset_execution_count,
    )

    names = [name for name, _ in FIG7_PROTOCOLS]
    specs = sweep_grid(names, QUICK_CONFIG)

    def timed(run):
        start = time.perf_counter()
        value = run()
        return time.perf_counter() - start, value

    def bare_run():
        return Engine(backend=SerialBackend()).run_values(specs)

    def checkpointed():
        with tempfile.TemporaryDirectory() as tmp:
            store = CheckpointStore(pathlib.Path(tmp) / "bench.ckpt")
            with Engine(backend=SerialBackend(), checkpoint=store) as engine:
                return engine.run_values(specs)

    # Trace caches stay warm across the inner repeats on purpose: both
    # sides then time pure simulation + (for one side) journaling, so the
    # overhead ratio is not swamped by arrival-trace regeneration noise.
    # The bare/checkpointed repeats interleave so background-load drift
    # hits both sides alike instead of biasing the overhead ratio.
    bare_seconds = checkpointed_seconds = float("inf")
    bare = journaled = None
    for _ in range(5):
        seconds, bare = timed(bare_run)
        bare_seconds = min(bare_seconds, seconds)
        seconds, journaled = timed(checkpointed)
        checkpointed_seconds = min(checkpointed_seconds, seconds)
    if journaled != bare:
        raise AssertionError("checkpointed sweep diverged from bare sweep")
    overhead_pct = 100.0 * (checkpointed_seconds - bare_seconds) / bare_seconds

    with tempfile.TemporaryDirectory() as tmp:
        store = CheckpointStore(pathlib.Path(tmp) / "bench.ckpt")
        with Engine(backend=SerialBackend(), checkpoint=store) as engine:
            engine.run_values(specs)
        reset_execution_count()
        resume_store = CheckpointStore(pathlib.Path(tmp) / "bench.ckpt")
        with Engine(backend=SerialBackend(), checkpoint=resume_store) as engine:
            resumed = engine.run_values(specs)
    if resumed != bare:
        raise AssertionError("resumed sweep diverged from bare sweep")
    if execution_count() != 0:
        raise AssertionError(
            f"resume re-executed {execution_count()} journaled specs"
        )

    return {
        "specs": len(specs),
        "overhead_pct": round(overhead_pct, 2),
        "verified": 1,
    }


def bench_adaptive_day_quick() -> Dict[str, float]:
    """The quick adaptive-vs-static DHB day study (diurnal + event ring).

    Replays the seeded nonstationary day through both arms serially and
    records the peaks.  ``verified`` requires the study's acceptance
    claim: the adaptive arm's day peak strictly below static DHB's while
    its worst startup deferral stays within the shared deadline guarantee
    ``W = (1 + max_slack) * d``.  The regression gate additionally holds
    this bench's wall time to 1.5x the stationary quick sweep
    (``fig7_quick_serial``) in the same report — nonstationary admission
    must stay on the same hot path, not grow a second simulator.
    """
    from repro.experiments.adaptive import AdaptiveStudyConfig, run_adaptive_study

    clear_trace_cache()
    result = run_adaptive_study(config=AdaptiveStudyConfig().quick())
    return {
        "requests": result.static.n_requests,
        "static_peak": result.static.peak_streams,
        "adaptive_peak": result.adaptive.peak_streams,
        "retunes": result.adaptive.retunes,
        "verified": int(result.verified),
    }


def bench_serve_loopback_quick() -> Dict[str, float]:
    """A live loopback burst through the asyncio serving path.

    Boots a :class:`BroadcastDaemon` on fast 50ms slots, drives 100
    uniform client sessions over two seconds of wall clock, and records
    session throughput and the p99 wait to first segment.  ``verified``
    requires zero dropped sessions *and* the measured wait distribution
    agreeing with the slotted simulator's prediction for the same arrival
    offsets — the same invariant the ``serve-e2e`` CI job gates at scale.
    """
    import asyncio

    from repro.serve import (
        BroadcastDaemon,
        LoadgenConfig,
        ServeConfig,
        compare_with_simulation,
        run_loadgen_async,
    )

    config = ServeConfig(n_segments=6, slot_duration=0.05, segment_bytes=1024)

    async def go():
        daemon = BroadcastDaemon(config)
        await daemon.start()
        host, port = daemon.address
        try:
            return await run_loadgen_async(
                LoadgenConfig(
                    host=host,
                    port=port,
                    clients=100,
                    duration_seconds=2.0,
                    arrivals="uniform",
                    want="first",
                    seed=2001,
                )
            )
        finally:
            await daemon.stop()

    result = asyncio.run(go())
    comparison = compare_with_simulation(result)
    verified = int(result.dropped == 0 and comparison.within_tolerance())
    return {
        "clients": result.completed,
        "clients_per_sec": round(result.clients_per_second, 1),
        "p99_wait_ms": round(result.wait_p99 * 1000.0, 2),
        "verified": verified,
    }


BENCHES: Dict[str, Callable[[], Dict[str, float]]] = {
    "micro_dhb_saturated": bench_dhb_saturated,
    "micro_dhb_cold": bench_dhb_cold,
    "micro_ud_saturated": bench_ud_saturated,
    "micro_dhb_10m": bench_dhb_10m,
    "fig7_quick_serial": bench_fig7_quick_serial,
    "fig7_quick_parallel": bench_fig7_quick_parallel,
    "fig7_columnar": bench_fig7_columnar,
    "cluster_quick": bench_cluster_quick,
    "cluster_quick_parallel": bench_cluster_parallel,
    "edge_quick": bench_edge_quick,
    "runtime_quick": bench_runtime_quick,
    "checkpoint_resume_quick": bench_checkpoint_resume_quick,
    "adaptive_day_quick": bench_adaptive_day_quick,
    "serve_loopback_quick": bench_serve_loopback_quick,
}


def calibrate() -> float:
    """Best-of-3 wall time of a fixed CPU-bound spin loop, in seconds.

    The loop does the same arithmetic everywhere, so its timing is a pure
    measure of single-core speed on the machine that produced a report.
    ``check_regression.py`` divides two reports' calibrations to normalize
    bench timings taken on different hardware before comparing them.
    """
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        acc = 0
        for i in range(500_000):
            acc += i * i & 0xFFFF
        best = min(best, time.perf_counter() - start)
    return best


def time_bench(
    bench: Callable[[], Dict[str, float]], repeats: int
) -> Tuple[float, Dict[str, float]]:
    """Best-of-``repeats`` wall time (and the final run's detail payload)."""
    best = float("inf")
    detail: Dict[str, float] = {}
    for _ in range(repeats):
        start = time.perf_counter()
        detail = bench()
        best = min(best, time.perf_counter() - start)
    return best, detail


def run_report(repeats: int) -> Dict[str, object]:
    benches: Dict[str, object] = {}
    for name, bench in BENCHES.items():
        seconds, detail = time_bench(bench, repeats)
        benches[name] = {"seconds": round(seconds, 6), "detail": detail}
        print(f"{name:28s} {seconds * 1000:10.2f} ms  {detail}")
    calibration = calibrate()
    print(f"{'calibration':28s} {calibration * 1000:10.2f} ms  (spin-loop)")
    return {
        "schema": 1,
        "repeats": repeats,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "calibration_seconds": round(calibration, 6),
        "benches": benches,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=_REPO_ROOT / "BENCH_sweep.json",
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of repetitions per bench"
    )
    args = parser.parse_args(argv)
    report = run_report(max(1, args.repeats))
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
