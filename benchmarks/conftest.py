"""Shared benchmark fixtures.

Every figure bench renders its series table into ``benchmarks/results/`` so
a bench run leaves the regenerated "figures" on disk, diffable against
EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.config import SweepConfig

#: Paper-scale sweep: the full 1-1000 requests/hour grid.  Horizons are a
#: little shorter than the unit-test integration ones because every bench
#: covers ten rates; orderings are stable well before this scale.
BENCH_CONFIG = SweepConfig(base_hours=30.0, min_requests=300)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    path = pathlib.Path(__file__).parent / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture(scope="session")
def bench_config() -> SweepConfig:
    return BENCH_CONFIG
