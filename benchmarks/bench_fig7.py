"""Benchmark + regeneration of Figure 7: average bandwidth vs arrival rate.

Running ``pytest benchmarks/bench_fig7.py --benchmark-only`` re-simulates
the paper's four protocols (stream tapping, UD, DHB, NPB; 99 segments,
two-hour video) over the full 1-1000 requests/hour grid, writes the series
table to ``benchmarks/results/fig7.txt``, and asserts the published shape.
"""

from repro.analysis.metrics import series_by_name
from repro.analysis.theory import dhb_saturation_bandwidth
from repro.experiments.fig7 import report_fig7, run_fig7


def test_fig7_average_bandwidth(benchmark, bench_config, results_dir):
    series = benchmark.pedantic(
        lambda: run_fig7(bench_config), rounds=1, iterations=1
    )
    text = report_fig7(series)
    (results_dir / "fig7.txt").write_text(text + "\n")
    print("\n" + text)

    indexed = series_by_name(series)
    tapping = indexed["Stream Tapping/Patching"]
    ud = indexed["UD Protocol"]
    dhb = indexed["DHB Protocol"]
    npb = indexed["New Pagoda Broadcasting"]

    # NPB is flat at its stream count (6 for 99 segments).
    assert all(m == 6.0 for m in npb.means)

    # DHB needs less average bandwidth than every rival at every swept rate
    # of at least 2/hour (the paper's headline claim).
    for i, rate in enumerate(dhb.rates):
        if rate < 2.0:
            continue
        assert dhb.means[i] < tapping.means[i], f"tapping beat DHB at {rate}/h"
        assert dhb.means[i] < ud.means[i], f"UD beat DHB at {rate}/h"
        assert dhb.means[i] < npb.means[i], f"NPB beat DHB at {rate}/h"

    # Stream tapping stays close to DHB at 1/hour, then diverges:
    assert tapping.means[0] < 1.6 * dhb.means[0]
    assert tapping.means[-1] > 4 * dhb.means[-1]

    # DHB plateaus just above the harmonic number, strictly below NPB.
    plateau = dhb.means[-1]
    assert dhb_saturation_bandwidth(99) <= plateau < 6.0

    # UD is reactive-competitive at low rates and saturates at FB's 7.
    assert ud.means[0] < 3.0
    assert abs(ud.means[-1] - 7.0) < 0.05

    # Curves are monotone non-decreasing in the rate (dynamic protocols).
    for curve in (dhb, ud):
        assert all(a <= b + 0.05 for a, b in zip(curve.means, curve.means[1:]))
