"""Extension bench: client set-top-box buffer demand.

The whole protocol family rests on Viswanathan & Imielinski's STB "buffer
space to store between, say, thirty minutes and one hour of video data".
This bench replays DHB client reception plans and measures how much buffer
the protocol actually demands across arrival rates — for the CBR Figures 7/8
configuration and for the Section 4 VBR variants.
"""

import numpy as np

from repro.analysis.tables import format_simple_table
from repro.core.buffer import buffer_profile, worst_case_buffer
from repro.core.dhb import DHBProtocol
from repro.core.variants import make_all_variants
from repro.sim.rng import RandomStreams
from repro.sim.slotted import SlottedSimulation
from repro.units import MINUTE, TWO_HOURS
from repro.video.matrix import matrix_like_video
from repro.workload.arrivals import PoissonArrivals

N_SEGMENTS = 99
SLOT = TWO_HOURS / N_SEGMENTS


def _dhb_buffer_stats(rate, hours=10.0, seed=3):
    protocol = DHBProtocol(n_segments=N_SEGMENTS, track_clients=True)
    slots = int(hours * 3600.0 / SLOT)
    sim = SlottedSimulation(protocol, SLOT, slots)
    times = PoissonArrivals(rate).generate(
        slots * SLOT, RandomStreams(seed).get(f"buf{rate}")
    )
    sim.run(times)
    peaks = [buffer_profile(plan).peak_bytes for plan in protocol.clients]
    return {
        "clients": len(peaks),
        "mean_peak_segments": float(np.mean(peaks)) if peaks else 0.0,
        "worst_peak_segments": max(peaks) if peaks else 0.0,
    }


def test_buffer_demand_cbr(benchmark, results_dir):
    stats_by_rate = benchmark.pedantic(
        lambda: {rate: _dhb_buffer_stats(rate) for rate in (2.0, 20.0, 200.0)},
        rounds=1,
        iterations=1,
    )
    rows = []
    for rate, stats in stats_by_rate.items():
        rows.append(
            [
                f"{rate:g}",
                stats["clients"],
                f"{stats['mean_peak_segments']:.1f}",
                f"{stats['worst_peak_segments']:.0f}",
                f"{stats['worst_peak_segments'] * SLOT / MINUTE:.0f}",
            ]
        )
    text = (
        "DHB client buffer demand (99 segments, two-hour video):\n"
        + format_simple_table(
            ["req/h", "clients", "mean peak (segs)", "worst (segs)",
             "worst (min of video)"],
            rows,
        )
    )
    (results_dir / "buffer_demand.txt").write_text(text + "\n")
    print("\n" + text)

    for stats in stats_by_rate.values():
        # Demand stays within the video and within the STB sizing the
        # literature assumed (an hour of video = half the segments).
        assert stats["worst_peak_segments"] <= N_SEGMENTS
        assert stats["worst_peak_segments"] * SLOT <= 75 * MINUTE
    # Busier systems schedule earlier instances, so clients buffer more.
    assert (
        stats_by_rate[200.0]["mean_peak_segments"]
        >= stats_by_rate[2.0]["mean_peak_segments"]
    )


def test_buffer_demand_vbr_variants(benchmark, results_dir):
    video = matrix_like_video()
    variants = make_all_variants(video, 60.0)

    def measure():
        outcome = {}
        for name in ("DHB-b", "DHB-d"):
            variant = variants[name]
            protocol = variant.build_protocol(track_clients=True)
            slots = 400
            sim = SlottedSimulation(protocol, variant.slot_duration, slots)
            times = PoissonArrivals(100.0).generate(
                slots * variant.slot_duration, RandomStreams(4).get(name)
            )
            sim.run(times)
            outcome[name] = worst_case_buffer(
                protocol.clients, variant.segment_bytes
            )
        return outcome

    peaks = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["VBR worst-case client buffer (bytes):"]
    for name, peak in peaks.items():
        lines.append(f"  {name}: {peak / 2**20:.0f} MiB "
                     f"({peak / video.total_bytes:.1%} of the video)")
    text = "\n".join(lines)
    (results_dir / "buffer_demand_vbr.txt").write_text(text + "\n")
    print("\n" + text)

    for name, peak in peaks.items():
        assert 0 < peak < video.total_bytes
    # DHB-d's relaxed periods deliver data earlier relative to its deadline
    # shift, so its demand is at least in the same ballpark as DHB-b's.
    assert peaks["DHB-d"] < video.total_bytes * 0.75
